"""Code-generic RAID-6 volumes.

A :class:`Raid6Array` binds an :class:`ArrayCode` to a
:class:`BlockArray`: stripe-group ``g`` occupies block rows
``g*rows .. (g+1)*rows - 1``; code column ``c`` maps to a physical disk,
optionally *rotated* per group to emulate the paper's "with load
balancing support" implementation (dedicated parity redistributed every
few stripe-groups, Section V-B).
"""

from __future__ import annotations

import numpy as np

from repro.codes.base import ArrayCode
from repro.codes.decoder import apply_recovery_plan
from repro.codes.geometry import Cell
from repro.raid.array import BlockArray

__all__ = ["Raid6Array"]


class Raid6Array:
    """A RAID-6 volume running any registered array code.

    Parameters
    ----------
    array:
        Physical substrate; must have at least ``code.n_disks`` disks.
    code:
        Any :class:`ArrayCode` (Code 5-6, RDP, ...).
    rotation_period:
        ``None`` disables load balancing (column ``c`` always on disk
        ``c`` — the NLB configuration).  An integer ``k`` rotates the
        column->disk mapping by one position every ``k`` stripe-groups.
    """

    def __init__(self, array: BlockArray, code: ArrayCode, rotation_period: int | None = None):
        self.array = array
        self.code = code
        if rotation_period is not None and rotation_period < 1:
            raise ValueError("rotation_period must be >= 1")
        self.rotation_period = rotation_period
        self._physical_cols = code.layout.physical_cols
        if len(self._physical_cols) > array.n_disks:
            raise ValueError(
                f"{code.name} needs {len(self._physical_cols)} disks, "
                f"array has {array.n_disks}"
            )

    # ------------------------------------------------------------ geometry
    @property
    def rows(self) -> int:
        return self.code.rows

    @property
    def groups(self) -> int:
        return self.array.blocks_per_disk // self.rows

    @property
    def capacity_blocks(self) -> int:
        return self.groups * self.code.num_data

    def rotation(self, group: int) -> int:
        if self.rotation_period is None:
            return 0
        return (group // self.rotation_period) % len(self._physical_cols)

    def disk_of(self, group: int, col: int) -> int:
        """Physical disk hosting code column ``col`` of stripe-group ``group``."""
        cols = self._physical_cols
        try:
            idx = cols.index(col)
        except ValueError:
            raise ValueError(f"column {col} is virtual — it has no disk") from None
        return cols[(idx + self.rotation(group)) % len(cols)]

    def block_of(self, group: int, row: int) -> int:
        return group * self.rows + row

    def locate(self, lba: int) -> tuple[int, Cell]:
        """Logical block -> (stripe-group, cell)."""
        if not 0 <= lba < self.capacity_blocks:
            raise IndexError(f"lba {lba} outside capacity {self.capacity_blocks}")
        group, idx = divmod(lba, self.code.num_data)
        return group, self.code.layout.data_cells[idx]

    # ------------------------------------------------------------- bulk fill
    def format_with(self, data: np.ndarray) -> None:
        """Uncounted: lay out logical data and encode every group."""
        data = np.asarray(data, dtype=np.uint8)
        if data.shape != (self.capacity_blocks, self.array.block_size):
            raise ValueError(
                f"need ({self.capacity_blocks}, {self.array.block_size}) blocks"
            )
        per_group = self.code.num_data
        for g in range(self.groups):
            stripe = self.code.make_stripe(data[g * per_group : (g + 1) * per_group])
            self._store_stripe(g, stripe)

    def _store_stripe(self, group: int, stripe: np.ndarray) -> None:
        for col in self._physical_cols:
            disk = self.disk_of(group, col)
            for row in range(self.rows):
                self.array.raw(disk, self.block_of(group, row))[...] = stripe[row, col]

    def assemble_stripe(self, group: int, counted: bool = False) -> np.ndarray:
        """Gather a group's stripe (virtual columns zero-filled)."""
        stripe = self.code.empty_stripe(self.array.block_size)
        for col in self._physical_cols:
            disk = self.disk_of(group, col)
            for row in range(self.rows):
                block = self.block_of(group, row)
                stripe[row, col] = (
                    self.array.read(disk, block) if counted else self.array.raw(disk, block)
                )
        return stripe

    # ------------------------------------------------------------------- I/O
    def read(self, lba: int) -> np.ndarray:
        group, (row, col) = self.locate(lba)
        disk = self.disk_of(group, col)
        if disk not in self.array.failed_disks:
            return self.array.read(disk, self.block_of(group, row))
        return self._degraded_read(group, (row, col))

    def _degraded_read(self, group: int, cell: Cell) -> np.ndarray:
        lost = self._lost_cells(group)
        # fast path: one parity chain covers the cell and touches no other
        # lost cell — serve the read with a single XOR pass (p-2 reads
        # instead of a whole-column rebuild).
        chain_sources = self._single_chain_sources(cell, lost)
        if chain_sources is not None:
            acc = np.zeros(self.array.block_size, dtype=np.uint8)
            for r, c in chain_sources:
                disk = self.disk_of(group, c)
                np.bitwise_xor(
                    acc, self.array.read(disk, self.block_of(group, r)), out=acc
                )
            return acc
        # slow path (e.g. double failure tangles the chains): full plan
        plan = self.code.plan_cell_recovery(tuple(sorted(lost | {cell})))
        stripe = self.code.empty_stripe(self.array.block_size)
        for src in plan.read_set:
            disk = self.disk_of(group, src[1])
            stripe[src[0], src[1]] = self.array.read(disk, self.block_of(group, src[0]))
        apply_recovery_plan(plan, stripe)
        return stripe[cell[0], cell[1]].copy()

    def _single_chain_sources(self, cell: Cell, lost: set[Cell]) -> tuple[Cell, ...] | None:
        """Cheapest chain isolating ``cell`` from the surviving cells."""
        layout = self.code.layout
        virtual = layout.virtual_cells
        best: tuple[Cell, ...] | None = None
        for chain in layout.chains:
            terms = [t for t in (chain.parity, *chain.members) if t not in virtual]
            hit = [t for t in terms if t in lost or t == cell]
            if hit != [cell]:
                continue
            sources = tuple(t for t in terms if t != cell)
            if best is None or len(sources) < len(best):
                best = sources
        return best

    def _lost_cells(self, group: int) -> set[Cell]:
        failed = self.array.failed_disks
        lost: set[Cell] = set()
        for col in self._physical_cols:
            if self.disk_of(group, col) in failed:
                for row in range(self.rows):
                    if (row, col) not in self.code.layout.virtual_cells:
                        lost.add((row, col))
        return lost

    def write(self, lba: int, payload: np.ndarray) -> int:
        """Read-modify-write with delta parity updates; returns I/Os."""
        group, (row, col) = self.locate(lba)
        payload = np.asarray(payload, dtype=np.uint8)
        disk = self.disk_of(group, col)
        failed = self.array.failed_disks
        ios = 0
        if disk in failed:
            raise NotImplementedError(
                "degraded writes route through rebuild in this model"
            )
        old = self.array.read(disk, self.block_of(group, row))
        ios += 1
        self.array.write(disk, self.block_of(group, row), payload)
        ios += 1
        delta = np.bitwise_xor(old, payload)
        # propagate the delta through every (transitive) parity chain
        seen: set[Cell] = set()
        frontier: list[Cell] = [(row, col)]
        while frontier:
            cur = frontier.pop()
            for chain in self.code.layout.chains_of_cell.get(cur, ()):
                if chain.parity in seen:
                    continue
                seen.add(chain.parity)
                frontier.append(chain.parity)
                pdisk = self.disk_of(group, chain.parity[1])
                if pdisk in failed:
                    continue
                pblock = self.block_of(group, chain.parity[0])
                cur_val = self.array.read(pdisk, pblock)
                ios += 1
                self.array.write(pdisk, pblock, np.bitwise_xor(cur_val, delta))
                ios += 1
        return ios

    # ---------------------------------------------------------------- repair
    def rebuild_disks(self, *disks: int) -> None:
        """Reconstruct up to two replaced disks group-by-group."""
        for d in disks:
            self.array.replace_disk(d)
        for group in range(self.groups):
            cols = [
                col for col in self._physical_cols if self.disk_of(group, col) in disks
            ]
            if not cols:
                continue
            plan = self.code.plan_column_recovery(*cols)
            stripe = self.code.empty_stripe(self.array.block_size)
            for src in plan.read_set:
                disk = self.disk_of(group, src[1])
                stripe[src[0], src[1]] = self.array.read(disk, self.block_of(group, src[0]))
            apply_recovery_plan(plan, stripe)
            for col in cols:
                disk = self.disk_of(group, col)
                for row in range(self.rows):
                    if (row, col) in self.code.layout.virtual_cells:
                        continue
                    self.array.write(disk, self.block_of(group, row), stripe[row, col])

    # ----------------------------------------------------------------- audit
    def verify(self) -> bool:
        """Uncounted parity scrub of every stripe-group."""
        for group in range(self.groups):
            if not self.code.verify(self.assemble_stripe(group)):
                return False
        return True
