"""RAID-5 (and degenerate RAID-0/RAID-4) array logic.

One stripe occupies one block per disk; stripe ``s`` lives at block
offset ``s`` on every disk.  This matches the paper's element==block
granularity (Table II) — a "stripe" of a RAID-5 is a row.
"""

from __future__ import annotations

import numpy as np

from repro.raid.array import BlockArray
from repro.raid.layouts import Raid5Layout, cell_role, data_disk, locate_block, parity_disk
from repro.util.blocks import xor_reduce

__all__ = ["Raid5Array"]


class Raid5Array:
    """A RAID-5 volume over a :class:`BlockArray`.

    Parameters
    ----------
    array:
        Physical substrate (its first ``n_disks`` disks are used).
    layout:
        Parity rotation; the paper's default is left-asymmetric.
    n_disks:
        Width of the RAID-5; defaults to the whole array.  The migration
        engine narrows this when extra disks have been hot-added but not
        yet incorporated.
    """

    def __init__(
        self,
        array: BlockArray,
        layout: Raid5Layout = Raid5Layout.LEFT_ASYMMETRIC,
        n_disks: int | None = None,
    ):
        self.array = array
        self.layout = layout
        self.n = array.n_disks if n_disks is None else n_disks
        if self.n < 3:
            raise ValueError("RAID-5 needs >= 3 disks")
        if self.n > array.n_disks:
            raise ValueError("RAID-5 wider than the physical array")

    # ------------------------------------------------------------ geometry
    @property
    def stripes(self) -> int:
        return self.array.blocks_per_disk

    @property
    def capacity_blocks(self) -> int:
        """Logical data blocks."""
        return self.stripes * (self.n - 1)

    def parity_disk(self, stripe: int) -> int:
        return parity_disk(self.layout, stripe, self.n)

    def locate(self, lba: int) -> tuple[int, int]:
        """Logical block -> (stripe, disk)."""
        if not 0 <= lba < self.capacity_blocks:
            raise IndexError(f"lba {lba} outside capacity {self.capacity_blocks}")
        return locate_block(self.layout, lba, self.n)

    # ------------------------------------------------------------- bulk fill
    def format_with(self, data: np.ndarray) -> None:
        """Write logical data blocks 0..len-1 and compute all parities.

        Uncounted (models the array's pre-existing state, not migration
        traffic).
        """
        data = np.asarray(data, dtype=np.uint8)
        if data.shape != (self.capacity_blocks, self.array.block_size):
            raise ValueError(
                f"need ({self.capacity_blocks}, {self.array.block_size}) blocks"
            )
        for lba in range(self.capacity_blocks):
            stripe, disk = self.locate(lba)
            self.array.raw(disk, stripe)[...] = data[lba]
        for stripe in range(self.stripes):
            pd = self.parity_disk(stripe)
            views = [
                self.array.raw(d, stripe) for d in range(self.n) if d != pd
            ]
            xor_reduce(views, out=self.array.raw(pd, stripe))

    # ------------------------------------------------------------------- I/O
    def read(self, lba: int) -> np.ndarray:
        """Logical read; reconstructs through parity when the disk failed."""
        stripe, disk = self.locate(lba)
        if disk in self.array.failed_disks:
            return self._degraded_read(stripe, disk)
        return self.array.read(disk, stripe)

    def _degraded_read(self, stripe: int, lost_disk: int) -> np.ndarray:
        chunks = [
            self.array.read(d, stripe) for d in range(self.n) if d != lost_disk
        ]
        return xor_reduce(chunks)

    def write(self, lba: int, payload: np.ndarray) -> int:
        """Logical read-modify-write; returns I/Os performed.

        The standard small-write path: read old data + old parity, write
        new data + new parity (4 I/Os).  Degraded variants fall back to
        full-stripe reconstruction of the missing piece.
        """
        stripe, disk = self.locate(lba)
        pd = self.parity_disk(stripe)
        payload = np.asarray(payload, dtype=np.uint8)
        failed = self.array.failed_disks
        ios = 0
        if disk in failed:
            # data disk gone: refresh parity so the write is still durable.
            others = [
                self.array.read(d, stripe)
                for d in range(self.n)
                if d not in (disk, pd)
            ]
            ios += len(others)
            new_parity = xor_reduce(others + [payload]) if others else payload.copy()
            self.array.write(pd, stripe, new_parity)
            return ios + 1
        old = self.array.read(disk, stripe)
        ios += 1
        self.array.write(disk, stripe, payload)
        ios += 1
        if pd not in failed:
            old_parity = self.array.read(pd, stripe)
            ios += 1
            delta = np.bitwise_xor(old, payload)
            self.array.write(pd, stripe, np.bitwise_xor(old_parity, delta))
            ios += 1
        return ios

    # ---------------------------------------------------------------- repair
    def rebuild_disk(self, disk: int) -> None:
        """Reconstruct a replaced disk stripe-by-stripe."""
        self.array.replace_disk(disk)
        for stripe in range(self.stripes):
            chunks = [
                self.array.read(d, stripe) for d in range(self.n) if d != disk
            ]
            self.array.write(disk, stripe, xor_reduce(chunks))

    # ----------------------------------------------------------------- audit
    def verify(self) -> bool:
        """Uncounted parity scrub over every stripe."""
        for stripe in range(self.stripes):
            views = [self.array.raw(d, stripe) for d in range(self.n)]
            if xor_reduce(views).any():
                return False
        return True

    def parity_map(self) -> list[tuple[int, int]]:
        """(stripe, parity disk) for every stripe — used by the planner."""
        return [(s, self.parity_disk(s)) for s in range(self.stripes)]

    def logical_of(self, stripe: int, disk: int) -> int | None:
        """Inverse mapping; ``None`` for parity cells."""
        k = cell_role(self.layout, stripe, disk, self.n)
        if k is None:
            return None
        return stripe * (self.n - 1) + k

    def data_disk_of(self, stripe: int, k: int) -> int:
        return data_disk(self.layout, stripe, self.n, k)
