"""RAID-0/4/5 stripe layouts and block placement.

The paper's conversion costs hinge on *where RAID-5 keeps its rotating
parity*: Code 5-6's horizontal parities coincide with a left-(a)symmetric
RAID-5's parity placement (parity of stripe ``i`` on disk ``n-1-i mod
n``), and H-Code's anti-diagonal parities align with a right-layout
RAID-5 (parity of stripe ``i`` on disk ``i mod n``).  All four classic
rotations are implemented, matching the Linux md driver's definitions:

* ``left``/``right`` selects the rotation direction of the parity disk;
* ``symmetric`` means logical data blocks continue immediately after the
  parity disk (wrapping), ``asymmetric`` means they fill disks in
  ascending order skipping the parity disk.
"""

from __future__ import annotations

import enum

__all__ = ["Raid5Layout", "parity_disk", "data_disk", "locate_block", "cell_role"]


class Raid5Layout(enum.Enum):
    """Classic RAID-5 parity rotations (md driver nomenclature)."""

    LEFT_ASYMMETRIC = "left-asymmetric"
    LEFT_SYMMETRIC = "left-symmetric"
    RIGHT_ASYMMETRIC = "right-asymmetric"
    RIGHT_SYMMETRIC = "right-symmetric"

    @property
    def is_left(self) -> bool:
        return self in (Raid5Layout.LEFT_ASYMMETRIC, Raid5Layout.LEFT_SYMMETRIC)

    @property
    def is_symmetric(self) -> bool:
        return self in (Raid5Layout.LEFT_SYMMETRIC, Raid5Layout.RIGHT_SYMMETRIC)


def parity_disk(layout: Raid5Layout, stripe: int, n: int) -> int:
    """Disk holding the parity block of ``stripe`` in an ``n``-disk RAID-5."""
    if n < 2:
        raise ValueError("RAID-5 needs >= 2 disks")
    if layout.is_left:
        return (n - 1) - (stripe % n)
    return stripe % n


def data_disk(layout: Raid5Layout, stripe: int, n: int, k: int) -> int:
    """Disk holding the ``k``-th logical data block of ``stripe``.

    ``k`` ranges over ``0 .. n-2`` (a stripe holds ``n-1`` data blocks).
    """
    if not 0 <= k < n - 1:
        raise ValueError(f"data index {k} outside 0..{n - 2}")
    pd = parity_disk(layout, stripe, n)
    if layout.is_symmetric:
        return (pd + 1 + k) % n
    # asymmetric: ascending disk order, skipping the parity disk
    return k if k < pd else k + 1


def locate_block(layout: Raid5Layout, lba: int, n: int) -> tuple[int, int]:
    """Map logical data block ``lba`` to ``(stripe, disk)``."""
    if lba < 0:
        raise ValueError("negative lba")
    stripe, k = divmod(lba, n - 1)
    return stripe, data_disk(layout, stripe, n, k)


def cell_role(layout: Raid5Layout, stripe: int, disk: int, n: int) -> int | None:
    """Inverse placement: the logical data index of ``(stripe, disk)``.

    Returns ``None`` when the cell is the stripe's parity block.
    """
    pd = parity_disk(layout, stripe, n)
    if disk == pd:
        return None
    if layout.is_symmetric:
        return (disk - pd - 1) % n
    return disk if disk < pd else disk - 1
