"""RAID substrate: layouts, in-memory block arrays, RAID-5/6 volumes."""

from repro.raid.array import BlockArray, DiskFailure
from repro.raid.layouts import Raid5Layout, cell_role, data_disk, locate_block, parity_disk
from repro.raid.raid5 import Raid5Array
from repro.raid.raid6 import Raid6Array

__all__ = [
    "BlockArray",
    "DiskFailure",
    "Raid5Layout",
    "Raid5Array",
    "Raid6Array",
    "parity_disk",
    "data_disk",
    "locate_block",
    "cell_role",
]

from repro.raid.scrub import Raid5ScrubReport, Raid6ScrubReport, scrub_raid5, scrub_raid6

__all__ += ["Raid5ScrubReport", "Raid6ScrubReport", "scrub_raid5", "scrub_raid6"]

from repro.raid.volume import Volume

__all__ += ["Volume"]
