"""Byte-addressable volume over a RAID array.

The RAID classes speak whole logical blocks; real consumers speak byte
extents.  :class:`Volume` provides ``pread``/``pwrite`` with arbitrary
offsets and lengths over either array type, doing the partial-block
read-modify-writes at the edges — the thin layer that makes the library
usable as an actual storage backend (and that the online migration keeps
consistent underneath).
"""

from __future__ import annotations

import numpy as np

__all__ = ["Volume"]


class Volume:
    """Byte extents over a :class:`Raid5Array` or :class:`Raid6Array`.

    Parameters
    ----------
    raid:
        Any object with ``capacity_blocks``, ``read(lba) -> ndarray`` and
        ``write(lba, payload)`` plus an ``array`` with ``block_size``.
    """

    def __init__(self, raid):
        self.raid = raid
        self.block_size = raid.array.block_size

    @property
    def size_bytes(self) -> int:
        return self.raid.capacity_blocks * self.block_size

    # ------------------------------------------------------------------ read
    def pread(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes starting at ``offset``."""
        self._check_range(offset, length)
        if length == 0:
            return b""
        first = offset // self.block_size
        last = (offset + length - 1) // self.block_size
        chunks = [self.raid.read(lba) for lba in range(first, last + 1)]
        buf = np.concatenate(chunks)
        start = offset - first * self.block_size
        return bytes(buf[start : start + length])

    # ----------------------------------------------------------------- write
    def pwrite(self, offset: int, data: bytes | bytearray | np.ndarray) -> int:
        """Write ``data`` at ``offset``; returns logical blocks touched.

        Partial blocks at either edge are read-modify-written, so parity
        stays consistent for any alignment.
        """
        data = np.frombuffer(bytes(data), dtype=np.uint8)
        self._check_range(offset, len(data))
        if len(data) == 0:
            return 0
        bs = self.block_size
        touched = 0
        pos = 0
        while pos < len(data):
            lba = (offset + pos) // bs
            inner = (offset + pos) % bs
            take = min(bs - inner, len(data) - pos)
            if take == bs:
                payload = data[pos : pos + bs]
            else:
                payload = self.raid.read(lba)
                payload[inner : inner + take] = data[pos : pos + take]
            self.raid.write(lba, payload)
            touched += 1
            pos += take
        return touched

    def fill(self, value: int = 0) -> None:
        """Overwrite the whole volume with a constant byte."""
        block = np.full(self.block_size, value, dtype=np.uint8)
        for lba in range(self.raid.capacity_blocks):
            self.raid.write(lba, block)

    # ---------------------------------------------------------------- checks
    def _check_range(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0:
            raise ValueError("offset and length must be non-negative")
        if offset + length > self.size_bytes:
            raise ValueError(
                f"extent [{offset}, {offset + length}) exceeds volume of "
                f"{self.size_bytes} bytes"
            )
