"""In-memory disk arrays with per-disk I/O accounting.

:class:`BlockArray` is the physical substrate every RAID class and the
migration engine run on: a bank of fixed-size block devices backed by one
numpy array, with failure injection and exact read/write counters per
disk.  The counters are what turn executed conversions into the paper's
I/O metrics (Figs 13-17) without any separate bookkeeping.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DiskFailure", "BlockArray"]


class DiskFailure(Exception):
    """Raised when touching a failed disk."""


class BlockArray:
    """A bank of ``n`` block devices of ``blocks_per_disk`` blocks each.

    Blocks are uint8 payloads of ``block_size`` bytes.  All accesses go
    through :meth:`read` / :meth:`write`, which enforce failure state and
    count I/Os; bulk snapshots for verification use :meth:`snapshot`
    (not counted — it models an out-of-band check, not array traffic).
    """

    def __init__(self, n_disks: int, blocks_per_disk: int, block_size: int = 16):
        if n_disks < 1 or blocks_per_disk < 1 or block_size < 1:
            raise ValueError("array dimensions must be positive")
        self.block_size = block_size
        self._store = np.zeros((n_disks, blocks_per_disk, block_size), dtype=np.uint8)
        self._failed: set[int] = set()
        self.reads = np.zeros(n_disks, dtype=np.int64)
        self.writes = np.zeros(n_disks, dtype=np.int64)

    # ------------------------------------------------------------ properties
    @property
    def n_disks(self) -> int:
        return self._store.shape[0]

    @property
    def blocks_per_disk(self) -> int:
        return self._store.shape[1]

    @property
    def failed_disks(self) -> frozenset[int]:
        return frozenset(self._failed)

    @property
    def total_reads(self) -> int:
        return int(self.reads.sum())

    @property
    def total_writes(self) -> int:
        return int(self.writes.sum())

    @property
    def total_ios(self) -> int:
        return self.total_reads + self.total_writes

    def reset_counters(self) -> None:
        self.reads[:] = 0
        self.writes[:] = 0

    # ------------------------------------------------------------------- I/O
    def _check(self, disk: int, block: int) -> None:
        if not 0 <= disk < self.n_disks:
            raise IndexError(f"disk {disk} outside 0..{self.n_disks - 1}")
        if disk in self._failed:
            raise DiskFailure(f"disk {disk} has failed")
        if not 0 <= block < self.blocks_per_disk:
            raise IndexError(f"block {block} outside disk of {self.blocks_per_disk}")

    def read(self, disk: int, block: int) -> np.ndarray:
        """Read one block (returns a copy; counted)."""
        self._check(disk, block)
        self.reads[disk] += 1
        return self._store[disk, block].copy()

    def write(self, disk: int, block: int, payload: np.ndarray) -> None:
        """Write one block (counted)."""
        self._check(disk, block)
        payload = np.asarray(payload, dtype=np.uint8)
        if payload.shape != (self.block_size,):
            raise ValueError(f"payload must be ({self.block_size},), got {payload.shape}")
        self.writes[disk] += 1
        self._store[disk, block] = payload

    def write_zero(self, disk: int, block: int) -> None:
        """Write a NULL block (parity invalidation; counted as a write)."""
        self._check(disk, block)
        self.writes[disk] += 1
        self._store[disk, block] = 0

    # ------------------------------------------------------- failure control
    def fail_disk(self, disk: int) -> None:
        if not 0 <= disk < self.n_disks:
            raise IndexError(f"disk {disk} outside array")
        self._failed.add(disk)

    def replace_disk(self, disk: int) -> None:
        """Swap in a blank disk (clears failure state and contents)."""
        if not 0 <= disk < self.n_disks:
            raise IndexError(f"disk {disk} outside array")
        self._failed.discard(disk)
        self._store[disk] = 0

    def add_disk(self) -> int:
        """Hot-add a blank disk; returns its index (RAID level migration)."""
        blank = np.zeros((1,) + self._store.shape[1:], dtype=np.uint8)
        self._store = np.concatenate([self._store, blank], axis=0)
        self.reads = np.append(self.reads, 0)
        self.writes = np.append(self.writes, 0)
        return self.n_disks - 1

    def remove_disk(self) -> None:
        """Drop the last disk (RAID-6 -> RAID-5 downgrade)."""
        if self.n_disks == 1:
            raise ValueError("cannot remove the last disk")
        last = self.n_disks - 1
        self._failed.discard(last)
        self._store = self._store[:-1]
        self.reads = self.reads[:-1]
        self.writes = self.writes[:-1]

    # ----------------------------------------------------------- inspection
    def snapshot(self) -> np.ndarray:
        """Uncounted copy of the whole array (verification only)."""
        return self._store.copy()

    def raw(self, disk: int, block: int) -> np.ndarray:
        """Uncounted view of a block (verification only)."""
        return self._store[disk, block]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<BlockArray {self.n_disks}x{self.blocks_per_disk} "
            f"bs={self.block_size} failed={sorted(self._failed)}>"
        )
