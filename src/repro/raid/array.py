"""In-memory disk arrays with per-disk I/O accounting.

:class:`BlockArray` is the physical substrate every RAID class and the
migration engine run on: a bank of fixed-size block devices backed by one
numpy array, with failure injection and exact read/write counters per
disk.  The counters are what turn executed conversions into the paper's
I/O metrics (Figs 13-17) without any separate bookkeeping.

Two I/O granularities share the same counting discipline:

* per-block :meth:`read` / :meth:`write` / :meth:`write_zero` — what the
  audited migration engine uses, one counter tick per call;
* counted bulk ops :meth:`read_blocks` / :meth:`write_blocks` /
  :meth:`write_zero_blocks` — one numpy gather/scatter over arbitrary
  ``(disk, block)`` index vectors, counting exactly one I/O per element
  (so a compiled execution of the same plan lands on identical per-disk
  counters).

Bulk engines that perform their arithmetic in place (batched XOR over
region views) use :meth:`bulk_view` + :meth:`credit_ios` instead of
reaching into the private store.

The store itself is pluggable: pass ``buffer=`` (any writable
C-contiguous uint8 ndarray of the right shape) to adopt external backing
zero-copy — this is how :mod:`repro.sweep.shm` places arrays in
``multiprocessing.shared_memory`` so pool workers read the same bytes
without pickling.  Externally backed arrays cannot be resized
(:meth:`add_disk` / :meth:`remove_disk` would silently detach from the
shared segment), and the provider owns the buffer's lifetime.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DiskFailure", "BlockArray"]


class DiskFailure(Exception):
    """Raised when touching a failed disk."""


class BlockArray:
    """A bank of ``n`` block devices of ``blocks_per_disk`` blocks each.

    Blocks are uint8 payloads of ``block_size`` bytes.  All accesses go
    through :meth:`read` / :meth:`write`, which enforce failure state and
    count I/Os; bulk snapshots for verification use :meth:`snapshot`
    (not counted — it models an out-of-band check, not array traffic).
    """

    def __init__(
        self,
        n_disks: int,
        blocks_per_disk: int,
        block_size: int = 16,
        buffer: np.ndarray | None = None,
    ):
        if n_disks < 1 or blocks_per_disk < 1 or block_size < 1:
            raise ValueError("array dimensions must be positive")
        self.block_size = block_size
        if buffer is None:
            self._store = np.zeros((n_disks, blocks_per_disk, block_size), dtype=np.uint8)
            self._owns_store = True
        else:
            shape = (n_disks, blocks_per_disk, block_size)
            if buffer.dtype != np.uint8:
                raise ValueError(f"buffer must be uint8, got {buffer.dtype}")
            if buffer.shape != shape:
                raise ValueError(f"buffer shape {buffer.shape} does not match {shape}")
            if not buffer.flags.c_contiguous or not buffer.flags.writeable:
                raise ValueError("buffer must be C-contiguous and writable")
            self._store = buffer  # adopted zero-copy; provider owns lifetime
            self._owns_store = False
        self._failed: set[int] = set()
        self.reads = np.zeros(n_disks, dtype=np.int64)
        self.writes = np.zeros(n_disks, dtype=np.int64)
        #: optional repro.faults.FaultPlane; None keeps every op fault-free
        self._fault_plane = None
        #: optional concurrency sanitizer; None skips all shadow recording
        self._sanitizer = None

    @classmethod
    def over(cls, buffer: np.ndarray) -> "BlockArray":
        """Adopt a ``(n_disks, blocks_per_disk, block_size)`` uint8 buffer."""
        if buffer.ndim != 3:
            raise ValueError(f"buffer must be 3-D, got shape {buffer.shape}")
        n, bpd, bs = buffer.shape
        return cls(n, bpd, bs, buffer=buffer)

    # ------------------------------------------------------------ properties
    @property
    def n_disks(self) -> int:
        return self._store.shape[0]

    @property
    def blocks_per_disk(self) -> int:
        return self._store.shape[1]

    @property
    def failed_disks(self) -> frozenset[int]:
        return frozenset(self._failed)

    @property
    def external_buffer(self) -> bool:
        """True when the store was adopted via ``buffer=`` / :meth:`over`."""
        return not self._owns_store

    @property
    def total_reads(self) -> int:
        return int(self.reads.sum())

    @property
    def total_writes(self) -> int:
        return int(self.writes.sum())

    @property
    def total_ios(self) -> int:
        return self.total_reads + self.total_writes

    def reset_counters(self) -> None:
        self.reads[:] = 0
        self.writes[:] = 0

    # ---------------------------------------------------------- fault plane
    @property
    def fault_plane(self):
        """The attached :class:`~repro.faults.plane.FaultPlane`, or None."""
        return self._fault_plane

    def attach_fault_plane(self, plane) -> None:
        """Install (or, with ``None``, remove) a fault-injection plane.

        Every counted I/O consults the plane before touching the store or
        the counters; a detached array pays a single ``is None`` test per
        op, so the injection-disabled overhead is unmeasurable.
        """
        self._fault_plane = plane

    # ----------------------------------------------------------- sanitizer
    @property
    def sanitizer(self):
        """The attached :class:`~repro.staticcheck.concur.sanitizer.
        BlockSanitizer`, or None."""
        return self._sanitizer

    def attach_sanitizer(self, sanitizer) -> None:
        """Install (or, with ``None``, remove) a shared-state sanitizer.

        Every *completed* counted I/O is shadow-recorded against the
        sanitizer's vector clocks; uncounted access (``raw`` /
        ``snapshot`` / ``gather_raw`` / ``restore_blocks``) stays
        invisible, mirroring its out-of-band role.  Detached, each op
        pays one ``is None`` test and the I/O counters are untouched.
        """
        self._sanitizer = sanitizer

    # ------------------------------------------------------------------- I/O
    def _check(self, disk: int, block: int) -> None:
        if not 0 <= disk < self.n_disks:
            raise IndexError(f"disk {disk} outside 0..{self.n_disks - 1}")
        if disk in self._failed:
            raise DiskFailure(f"disk {disk} has failed")
        if not 0 <= block < self.blocks_per_disk:
            raise IndexError(f"block {block} outside disk of {self.blocks_per_disk}")

    def read(self, disk: int, block: int) -> np.ndarray:
        """Read one block (returns a copy; counted).

        With a fault plane attached the read may raise a typed fault
        (sector error, exhausted transient, crash) *instead of* counting:
        only completed I/O ticks the counters.
        """
        self._check(disk, block)
        if self._fault_plane is not None:
            self._fault_plane.on_read(disk, block)
        self.reads[disk] += 1
        if self._sanitizer is not None:
            self._sanitizer.record_read(disk, block)
        return self._store[disk, block].copy()

    def write(self, disk: int, block: int, payload: np.ndarray) -> None:
        """Write one block (counted; a fault plane may tear or crash it)."""
        self._check(disk, block)
        payload = np.asarray(payload, dtype=np.uint8)
        if payload.shape != (self.block_size,):
            raise ValueError(f"payload must be ({self.block_size},), got {payload.shape}")
        if self._fault_plane is not None:
            payload, crash = self._fault_plane.on_write(
                disk, block, payload, self._store[disk, block]
            )
            if crash is not None:
                # the in-flight write's torn bytes hit the platter, but the
                # op never completed — nothing is counted
                if payload is not None:
                    self._store[disk, block] = payload
                raise crash
        self.writes[disk] += 1
        self._store[disk, block] = payload
        if self._sanitizer is not None:
            self._sanitizer.record_write(disk, block)

    def write_zero(self, disk: int, block: int) -> None:
        """Write a NULL block (parity invalidation; counted as a write)."""
        self._check(disk, block)
        if self._fault_plane is not None:
            # delegates to write(), which also shadow-records
            self.write(disk, block, np.zeros(self.block_size, dtype=np.uint8))
            return
        self.writes[disk] += 1
        self._store[disk, block] = 0
        if self._sanitizer is not None:
            self._sanitizer.record_write(disk, block)

    # -------------------------------------------------------------- bulk I/O
    def _check_bulk(self, disks, blocks) -> tuple[np.ndarray, np.ndarray]:
        disks = np.asarray(disks, dtype=np.intp).ravel()
        blocks = np.asarray(blocks, dtype=np.intp).ravel()
        if disks.shape != blocks.shape:
            raise ValueError("disks and blocks must have the same length")
        if disks.size:
            if disks.min() < 0 or disks.max() >= self.n_disks:
                raise IndexError("disk index outside array")
            if blocks.min() < 0 or blocks.max() >= self.blocks_per_disk:
                raise IndexError("block index outside disk")
            if self._failed and np.isin(disks, sorted(self._failed)).any():
                hit = sorted(set(int(d) for d in disks) & self._failed)
                raise DiskFailure(f"disk(s) {hit} have failed")
        return disks, blocks

    def read_blocks(self, disks, blocks) -> np.ndarray:
        """Bulk counted read: one gather, one counted I/O per element.

        Returns a fresh ``(k, block_size)`` array.  Duplicate locations
        are each counted (they model repeated physical reads).
        """
        disks, blocks = self._check_bulk(disks, blocks)
        if self._fault_plane is not None:
            res = self._fault_plane.on_bulk_read(disks, blocks)
            if res is not None:  # crash mid-bulk: count the completed prefix
                self.reads += np.bincount(disks[: res.prefix], minlength=self.n_disks)
                if self._sanitizer is not None:
                    self._sanitizer.record_reads(
                        disks[: res.prefix], blocks[: res.prefix]
                    )
                raise res.crash
        self.reads += np.bincount(disks, minlength=self.n_disks)
        if self._sanitizer is not None:
            self._sanitizer.record_reads(disks, blocks)
        return self._store.reshape(-1, self.block_size)[
            disks * self.blocks_per_disk + blocks
        ]

    def write_blocks(self, disks, blocks, payloads: np.ndarray) -> None:
        """Bulk counted write: one scatter, one counted I/O per element.

        ``payloads`` is ``(k, block_size)``.  When the same location
        appears more than once, the last payload wins (queue order).
        """
        disks, blocks = self._check_bulk(disks, blocks)
        payloads = np.asarray(payloads, dtype=np.uint8)
        if payloads.shape != (disks.size, self.block_size):
            raise ValueError(
                f"payloads must be ({disks.size}, {self.block_size}), got {payloads.shape}"
            )
        if self._fault_plane is not None:
            self._faulted_bulk_write(disks, blocks, payloads)
            return
        self.writes += np.bincount(disks, minlength=self.n_disks)
        self._store.reshape(-1, self.block_size)[
            disks * self.blocks_per_disk + blocks
        ] = payloads
        if self._sanitizer is not None:
            self._sanitizer.record_writes(disks, blocks)

    def _faulted_bulk_write(self, disks, blocks, payloads: np.ndarray) -> None:
        """Bulk write through the fault plane (tears, crash prefix)."""
        flat = self._store.reshape(-1, self.block_size)
        idx = disks * self.blocks_per_disk + blocks
        payloads, res = self._fault_plane.on_bulk_write(
            disks, blocks, payloads, lambda i: self._store[disks[i], blocks[i]]
        )
        if res is not None:
            # elements before the crash completed and count; the in-flight
            # element may leave torn bytes, uncounted
            self.writes += np.bincount(disks[: res.prefix], minlength=self.n_disks)
            flat[idx[: res.prefix]] = payloads[: res.prefix]
            if self._sanitizer is not None:
                self._sanitizer.record_writes(
                    disks[: res.prefix], blocks[: res.prefix]
                )
            if res.inflight_payload is not None:
                flat[idx[res.prefix]] = res.inflight_payload
            raise res.crash
        self.writes += np.bincount(disks, minlength=self.n_disks)
        flat[idx] = payloads
        if self._sanitizer is not None:
            self._sanitizer.record_writes(disks, blocks)

    def write_zero_blocks(self, disks, blocks) -> None:
        """Bulk counted NULL writes (parity invalidation)."""
        disks, blocks = self._check_bulk(disks, blocks)
        if self._fault_plane is not None:
            zeros = np.zeros((disks.size, self.block_size), dtype=np.uint8)
            self._faulted_bulk_write(disks, blocks, zeros)
            return
        self.writes += np.bincount(disks, minlength=self.n_disks)
        self._store.reshape(-1, self.block_size)[
            disks * self.blocks_per_disk + blocks
        ] = 0
        if self._sanitizer is not None:
            self._sanitizer.record_writes(disks, blocks)

    def trim_blocks(self, disks, blocks) -> None:
        """Bulk metadata-only trim: zeroes the slots, uncounted.

        Mirrors the engine's treatment of vacated slots — freed for
        bit-verifiability without generating array traffic.
        """
        disks, blocks = self._check_bulk(disks, blocks)
        self._store.reshape(-1, self.block_size)[
            disks * self.blocks_per_disk + blocks
        ] = 0

    def gather_raw(self, disks, blocks) -> np.ndarray:
        """Bulk uncounted gather (verification / controller memory).

        The vectorised counterpart of :meth:`raw`; failure state is not
        consulted (out-of-band access, like :meth:`snapshot`).
        """
        disks = np.asarray(disks, dtype=np.intp).ravel()
        blocks = np.asarray(blocks, dtype=np.intp).ravel()
        return self._store.reshape(-1, self.block_size)[
            disks * self.blocks_per_disk + blocks
        ]

    def restore_blocks(self, disks, blocks, payloads: np.ndarray) -> None:
        """Bulk uncounted scatter (journal rollback / stable-storage undo).

        The write-side counterpart of :meth:`gather_raw`: failure state
        and the fault plane are not consulted — this models the recovery
        path re-applying journaled pre-images out of band, not array
        traffic.  Duplicate locations must carry identical payloads
        (pre-images of one unit do by construction); the last one wins.
        """
        disks = np.asarray(disks, dtype=np.intp).ravel()
        blocks = np.asarray(blocks, dtype=np.intp).ravel()
        payloads = np.asarray(payloads, dtype=np.uint8)
        if disks.shape != blocks.shape:
            raise ValueError("disks and blocks must have the same length")
        if payloads.shape != (disks.size, self.block_size):
            raise ValueError(
                f"payloads must be ({disks.size}, {self.block_size}), got {payloads.shape}"
            )
        self._store.reshape(-1, self.block_size)[
            disks * self.blocks_per_disk + blocks
        ] = payloads

    def bulk_view(self, disks: slice, blocks: slice) -> np.ndarray:
        """Uncounted ndarray *view* of a rectangular region.

        For bulk conversion engines that XOR in place over large extents;
        the caller accounts the equivalent per-block traffic through
        :meth:`credit_ios`.  Both arguments must be slices so the result
        is a true view (no copy).
        """
        if not isinstance(disks, slice) or not isinstance(blocks, slice):
            raise TypeError("bulk_view takes slices (views only); use gather_raw for fancy indexing")
        return self._store[disks, blocks]

    def credit_ios(self, reads=None, writes=None) -> None:
        """Add per-disk I/O counts performed out-of-band by a bulk engine.

        ``reads`` / ``writes`` are length-``n_disks`` non-negative integer
        vectors (or None).  This keeps the counting discipline intact for
        engines that bypass the counted entry points for speed: the
        credited totals must equal the per-block I/Os the audited path
        would have performed (enforced by the equivalence tests).
        """
        for name, vec, counter in (("reads", reads, self.reads), ("writes", writes, self.writes)):
            if vec is None:
                continue
            vec = np.asarray(vec, dtype=np.int64)
            if vec.shape != (self.n_disks,):
                raise ValueError(f"{name} must have shape ({self.n_disks},), got {vec.shape}")
            if vec.size and vec.min() < 0:
                raise ValueError(f"{name} must be non-negative")
            counter += vec

    def restore(self, snapshot: np.ndarray) -> None:
        """Uncounted restore of a :meth:`snapshot` (benchmark/test reset)."""
        snapshot = np.asarray(snapshot, dtype=np.uint8)
        if snapshot.shape != self._store.shape:
            raise ValueError(
                f"snapshot shape {snapshot.shape} does not match array {self._store.shape}"
            )
        self._store[...] = snapshot

    # ------------------------------------------------------- failure control
    def fail_disk(self, disk: int) -> None:
        if not 0 <= disk < self.n_disks:
            raise IndexError(f"disk {disk} outside array")
        self._failed.add(disk)

    def replace_disk(self, disk: int) -> None:
        """Swap in a blank disk (clears failure state and contents)."""
        if not 0 <= disk < self.n_disks:
            raise IndexError(f"disk {disk} outside array")
        self._failed.discard(disk)
        self._store[disk] = 0

    def add_disk(self) -> int:
        """Hot-add a blank disk; returns its index (RAID level migration)."""
        if not self._owns_store:
            raise ValueError("externally backed array cannot be resized")
        blank = np.zeros((1,) + self._store.shape[1:], dtype=np.uint8)
        self._store = np.concatenate([self._store, blank], axis=0)
        self.reads = np.append(self.reads, 0)
        self.writes = np.append(self.writes, 0)
        return self.n_disks - 1

    def remove_disk(self) -> None:
        """Drop the last disk (RAID-6 -> RAID-5 downgrade)."""
        if not self._owns_store:
            raise ValueError("externally backed array cannot be resized")
        if self.n_disks == 1:
            raise ValueError("cannot remove the last disk")
        last = self.n_disks - 1
        self._failed.discard(last)
        self._store = self._store[:-1]
        self.reads = self.reads[:-1]
        self.writes = self.writes[:-1]

    # ----------------------------------------------------------- inspection
    def io_stats(self) -> dict:
        """JSON-ready view of the I/O counters (for ``repro.obs``).

        The counters themselves stay the single source of truth; this is
        the export format the metrics bridge and the CLI dumps share.
        """
        return {
            "reads": [int(r) for r in self.reads],
            "writes": [int(w) for w in self.writes],
            "total_reads": self.total_reads,
            "total_writes": self.total_writes,
            "total_ios": self.total_ios,
        }

    def snapshot(self) -> np.ndarray:
        """Uncounted copy of the whole array (verification only)."""
        return self._store.copy()

    def raw(self, disk: int, block: int) -> np.ndarray:
        """Uncounted view of a block (verification only)."""
        return self._store[disk, block]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<BlockArray {self.n_disks}x{self.blocks_per_disk} "
            f"bs={self.block_size} failed={sorted(self._failed)}>"
        )
