"""Parity scrubbing and silent-corruption localisation.

The paper's motivation leans on Undetected Disk Errors and Latent
Sector Errors (Table I's ASER rows): RAID arrays scrub periodically to
catch them.  This module implements scrubbing over both array types:

* **RAID-5** can only *detect* an inconsistent stripe (one parity
  equation — no way to tell which block rotted);
* a code-based **RAID-6** has two independent chains through every data
  cell, so a single corrupt block is *locatable*: the set of violated
  chains uniquely identifies it (and all violated syndromes must carry
  the same XOR delta).  Located blocks are repaired in place by erasure
  decoding — exactly why migrating an aging RAID-5 to RAID-6 also
  protects against silent corruption, not just whole-disk loss.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.codes.decoder import apply_recovery_plan
from repro.codes.geometry import Cell
from repro.raid.raid5 import Raid5Array
from repro.raid.raid6 import Raid6Array
from repro.util.blocks import xor_reduce

__all__ = ["Raid5ScrubReport", "Raid6ScrubReport", "scrub_raid5", "scrub_raid6"]


@dataclass
class Raid5ScrubReport:
    """Outcome of a RAID-5 scrub: detection only."""

    stripes_checked: int = 0
    inconsistent_stripes: list[int] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.inconsistent_stripes


@dataclass
class Raid6ScrubReport:
    """Outcome of a RAID-6 scrub: detection, localisation, repair."""

    groups_checked: int = 0
    inconsistent_groups: list[int] = field(default_factory=list)
    located: list[tuple[int, Cell]] = field(default_factory=list)
    repaired: list[tuple[int, Cell]] = field(default_factory=list)
    unlocatable_groups: list[int] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.inconsistent_groups


def scrub_raid5(raid5: Raid5Array) -> Raid5ScrubReport:
    """Verify every stripe's parity equation (uncounted maintenance I/O)."""
    report = Raid5ScrubReport()
    for stripe in range(raid5.stripes):
        report.stripes_checked += 1
        views = [raid5.array.raw(d, stripe) for d in range(raid5.n)]
        if xor_reduce(views).any():
            report.inconsistent_stripes.append(stripe)
    return report


def _violated_chains(code, stripe: np.ndarray) -> tuple[list[int], list[np.ndarray]]:
    """Indices and syndromes of unsatisfied chains in one stripe."""
    violated: list[int] = []
    syndromes: list[np.ndarray] = []
    virtual = code.layout.virtual_cells
    for idx, chain in enumerate(code.layout.chains):
        acc = stripe[chain.parity[0], chain.parity[1]].copy()
        for cell in chain.members:
            if cell not in virtual:
                np.bitwise_xor(acc, stripe[cell[0], cell[1]], out=acc)
        if acc.any():
            violated.append(idx)
            syndromes.append(acc)
    return violated, syndromes


def _chain_signature(code) -> dict[Cell, frozenset[int]]:
    """Cell -> indices of the chains whose equation contains it."""
    sig: dict[Cell, set[int]] = {}
    for idx, chain in enumerate(code.layout.chains):
        for cell in (chain.parity, *chain.members):
            sig.setdefault(cell, set()).add(idx)
    return {cell: frozenset(s) for cell, s in sig.items()}


def scrub_raid6(raid6: Raid6Array, repair: bool = True) -> Raid6ScrubReport:
    """Scrub every stripe-group; locate and optionally repair single
    corrupt blocks.

    Localisation succeeds when exactly one cell's chain signature matches
    the violated set *and* every violated syndrome carries the same
    delta; multi-block corruption within a group is reported as
    unlocatable (a rebuild-level event).
    """
    report = Raid6ScrubReport()
    code = raid6.code
    signatures = _chain_signature(code)
    for group in range(raid6.groups):
        report.groups_checked += 1
        stripe = raid6.assemble_stripe(group)
        violated, syndromes = _violated_chains(code, stripe)
        if not violated:
            continue
        report.inconsistent_groups.append(group)
        violated_set = frozenset(violated)
        same_delta = all(np.array_equal(s, syndromes[0]) for s in syndromes)
        candidates = [
            cell
            for cell, sig in signatures.items()
            if sig == violated_set and cell not in code.layout.virtual_cells
        ]
        if not same_delta or len(candidates) != 1:
            report.unlocatable_groups.append(group)
            continue
        cell = candidates[0]
        report.located.append((group, cell))
        if repair:
            plan = code.plan_cell_recovery((cell,))
            apply_recovery_plan(plan, stripe)
            disk = raid6.disk_of(group, cell[1])
            raid6.array.raw(disk, raid6.block_of(group, cell[0]))[...] = stripe[
                cell[0], cell[1]
            ]
            report.repaired.append((group, cell))
    return report
