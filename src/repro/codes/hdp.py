"""HDP Code — Wu, He, et al. (DSN 2011): Horizontal-Diagonal Parity.

A vertical-ish MDS code over ``p - 1`` disks whose two parity groups are
both distributed *inside* the ``(p-1) x (p-1)`` square:

* horizontal parities on the main diagonal ``(i, i)`` — the chain is the
  rest of row ``i``'s data cells;
* anti-diagonal parities on the anti-diagonal ``(i, p-2-i)`` — the chain
  is the square cells with ``(r + c) mod p == (p - 3 - i) mod p``, which
  may include horizontal parity cells (the paper's anti-diagonal parity
  protects horizontal parities too, giving HDP its balanced-I/O and
  double-protection properties).

Encode order is horizontal first, then anti-diagonal.  The chain
assignment ``(p - 3 - i) mod p`` was recovered by constrained search over
the published placement and is certified MDS exhaustively in tests for
``p`` in {5, 7, 11, 13}.
"""

from __future__ import annotations

from repro.codes.geometry import ChainKind, CodeLayout, ParityChain
from repro.util.primes import is_prime

__all__ = ["hdp_layout"]


def hdp_layout(p: int) -> CodeLayout:
    """Build the HDP layout for prime ``p`` (``p - 1`` disks)."""
    if not is_prime(p):
        raise ValueError(f"HDP requires prime p, got {p}")
    if p < 5:
        raise ValueError("HDP needs p >= 5")

    horizontal = {(i, i) for i in range(p - 1)}
    anti = {(i, p - 2 - i) for i in range(p - 1)}
    chains: list[ParityChain] = []
    for i in range(p - 1):
        members = tuple(
            (i, j)
            for j in range(p - 1)
            if (i, j) not in horizontal and (i, j) not in anti
        )
        chains.append(
            ParityChain(parity=(i, i), members=members, kind=ChainKind.HORIZONTAL)
        )
    for i in range(p - 1):
        target = (p - 3 - i) % p
        members = tuple(
            (r, c)
            for r in range(p - 1)
            for c in range(p - 1)
            if (r + c) % p == target and (r, c) not in anti
        )
        chains.append(
            ParityChain(parity=(i, p - 2 - i), members=members, kind=ChainKind.DIAGONAL)
        )
    return CodeLayout(
        name="hdp",
        p=p,
        rows=p - 1,
        cols=p - 1,
        chains=chains,
    )
