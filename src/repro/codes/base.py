"""The :class:`ArrayCode` runtime: encode / verify / decode / update.

All concrete codes are a :class:`CodeLayout` (pure geometry) wrapped in
this one class.  Payloads are numpy uint8 arrays shaped either
``(rows, cols, block_size)`` for one stripe or ``(batch, rows, cols,
block_size)`` for many stripes at once; the batch axis is broadcast
through every XOR so multi-stripe encoding costs one numpy reduction per
chain, not per stripe.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from repro.codes.decoder import PlanCache, apply_recovery_plan
from repro.codes.geometry import Cell, CodeLayout
from repro.codes.plans import RecoveryPlan

#: payload arrays are always uint8 blocks
Stripe = npt.NDArray[np.uint8]


class ArrayCode:
    """Runtime for one XOR array code.

    Parameters
    ----------
    layout:
        Declarative stripe geometry.
    """

    def __init__(self, layout: CodeLayout):
        self.layout = layout
        self._plans = PlanCache(layout)

    # ------------------------------------------------------------ properties
    @property
    def name(self) -> str:
        return self.layout.name

    @property
    def p(self) -> int:
        return self.layout.p

    @property
    def rows(self) -> int:
        return self.layout.rows

    @property
    def cols(self) -> int:
        return self.layout.cols

    @property
    def n_disks(self) -> int:
        return self.layout.n_disks

    @property
    def num_data(self) -> int:
        return self.layout.num_data

    def storage_efficiency(self) -> float:
        """Fraction of physical cells that hold user data."""
        physical = self.rows * self.layout.n_disks
        return self.layout.num_data / physical

    # -------------------------------------------------------------- stripes
    def empty_stripe(self, block_size: int = 16, batch: int | None = None) -> Stripe:
        shape: tuple[int, ...] = (self.rows, self.cols, block_size)
        if batch is not None:
            shape = (batch,) + shape
        return np.zeros(shape, dtype=np.uint8)

    def make_stripe(self, data_blocks: npt.ArrayLike) -> Stripe:
        """Lay out ``data_blocks`` into an encoded stripe.

        ``data_blocks`` is ``(num_data, block)`` or ``(batch, num_data,
        block)``, assigned to data cells in row-major order.
        """
        blocks: Stripe = np.asarray(data_blocks, dtype=np.uint8)
        batched = blocks.ndim == 3
        if blocks.shape[-2] != self.num_data:
            raise ValueError(
                f"{self.name} stripe holds {self.num_data} data blocks, "
                f"got {blocks.shape[-2]}"
            )
        stripe = self.empty_stripe(
            block_size=blocks.shape[-1],
            batch=blocks.shape[0] if batched else None,
        )
        for i, (r, c) in enumerate(self.layout.data_cells):
            stripe[..., r, c, :] = blocks[..., i, :]
        self.encode(stripe)
        return stripe

    def extract_data(self, stripe: Stripe) -> Stripe:
        """Inverse of :meth:`make_stripe`: gather the data blocks."""
        cells = self.layout.data_cells
        out: Stripe = np.empty(
            stripe.shape[:-3] + (len(cells), stripe.shape[-1]), dtype=np.uint8
        )
        for i, (r, c) in enumerate(cells):
            out[..., i, :] = stripe[..., r, c, :]
        return out

    # --------------------------------------------------------------- encode
    def encode(self, stripe: Stripe) -> Stripe:
        """Fill every parity cell of ``stripe`` in dependency order."""
        self._check_shape(stripe)
        virtual = self.layout.virtual_cells
        for chain in self.layout.encode_order:
            if chain.parity in virtual:
                # A parity on a virtual disk holds nothing; the virtual-cell
                # rules guarantee its real members XOR to zero (verified by
                # ``verify``), so the slot simply stays zero.
                continue
            members = [m for m in chain.members if m not in virtual]
            out = stripe[..., chain.parity[0], chain.parity[1], :]
            if not members:
                out[...] = 0
                continue
            first = stripe[..., members[0][0], members[0][1], :]
            np.copyto(out, first)
            for r, c in members[1:]:
                np.bitwise_xor(out, stripe[..., r, c, :], out=out)
        return stripe

    def verify(self, stripe: Stripe) -> bool:
        """True when every parity chain holds and virtual cells are zero."""
        self._check_shape(stripe)
        virtual = self.layout.virtual_cells
        for r, c in virtual:
            if stripe[..., r, c, :].any():
                return False
        for chain in self.layout.chains:
            acc = stripe[..., chain.parity[0], chain.parity[1], :].copy()
            for cell in chain.members:
                if cell in virtual:
                    continue
                np.bitwise_xor(acc, stripe[..., cell[0], cell[1], :], out=acc)
            if acc.any():
                return False
        return True

    # --------------------------------------------------------------- decode
    def plan_column_recovery(self, *cols: int) -> RecoveryPlan:
        """Recovery plan for whole-column (disk) failures."""
        return self._plans.plan_for_columns(*cols)

    def plan_cell_recovery(self, cells: tuple[Cell, ...]) -> RecoveryPlan:
        """Recovery plan for an arbitrary set of lost cells."""
        return self._plans.plan_for_cells(cells)

    def decode_columns(self, stripe: Stripe, *cols: int) -> Stripe:
        """Rebuild the full content of failed columns in place."""
        self._check_shape(stripe)
        plan = self.plan_column_recovery(*cols)
        return apply_recovery_plan(plan, stripe)

    def decode_cells(self, stripe: Stripe, cells: tuple[Cell, ...]) -> Stripe:
        self._check_shape(stripe)
        plan = self.plan_cell_recovery(cells)
        return apply_recovery_plan(plan, stripe)

    # --------------------------------------------------------------- update
    def update_block(self, stripe: Stripe, cell: Cell, new_value: npt.ArrayLike) -> int:
        """Read-modify-write a single data block, patching parities.

        Uses the delta method (optimal update): parity ^= old ^ new along
        every chain the cell participates in, propagating through parity
        members transitively.  Returns the number of parity cells written
        (the paper's *single write performance* metric; 2 is optimal).
        """
        self._check_shape(stripe)
        r, c = cell
        if (r, c) in self.layout.parity_cells:
            raise ValueError(f"{cell} is a parity cell; write data cells only")
        if (r, c) in self.layout.virtual_cells:
            raise ValueError(f"{cell} is virtual; it holds no data")
        value: Stripe = np.asarray(new_value, dtype=np.uint8)
        delta = np.bitwise_xor(stripe[..., r, c, :], value)
        stripe[..., r, c, :] = value
        touched: list[Cell] = []
        frontier: list[Cell] = [cell]
        seen: set[Cell] = set()
        while frontier:
            cur = frontier.pop()
            for chain in self.layout.chains_of_cell.get(cur, ()):
                if chain.parity in seen:
                    continue
                seen.add(chain.parity)
                pr, pc = chain.parity
                np.bitwise_xor(stripe[..., pr, pc, :], delta, out=stripe[..., pr, pc, :])
                touched.append(chain.parity)
                frontier.append(chain.parity)
        return len(touched)

    # -------------------------------------------------------------- helpers
    def _check_shape(self, stripe: Stripe) -> None:
        if stripe.ndim not in (3, 4):
            raise ValueError("stripe must be (rows, cols, block) or (batch, rows, cols, block)")
        if stripe.shape[-3] != self.rows or stripe.shape[-2] != self.cols:
            raise ValueError(
                f"stripe shape {stripe.shape[-3:-1]} does not match "
                f"{self.name} geometry {(self.rows, self.cols)}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ArrayCode {self.name} p={self.p} {self.rows}x{self.cols}>"
