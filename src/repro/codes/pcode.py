"""P-Code — Jin, Feng, Jiang, Tian (ICS 2009).

A vertical MDS code over ``p - 1`` columns (``p`` prime) built from pair
labels rather than geometric diagonals:

* the stripe has ``(p-1)/2`` rows; row 0 is the parity row;
* every data cell carries a label ``{a, b}`` — a 2-subset of
  ``{1, .., p-1}`` with ``(a + b) mod p != 0`` — and lives in column
  ``((a + b) mod p) - 1``;
* the parity of column ``j`` is the XOR of every data cell whose label
  contains ``j + 1``.

Each column receives exactly ``(p-3)/2`` data cells, each data cell
feeds exactly two parities (optimal update), and each parity chain has
``p - 2`` members.
"""

from __future__ import annotations

import itertools

from repro.codes.geometry import Cell, ChainKind, CodeLayout, ParityChain
from repro.util.primes import is_prime

__all__ = ["pcode_layout", "pcode_cell_labels"]


def pcode_cell_labels(p: int) -> dict[Cell, frozenset[int]]:
    """Map each data cell of the P-Code stripe to its pair label.

    Within a column, labels are assigned to rows ``1 ..`` in ascending
    ``(min, max)`` order — any fixed convention works; this one is
    deterministic so layouts are reproducible.
    """
    by_col: dict[int, list[frozenset[int]]] = {}
    for a, b in itertools.combinations(range(1, p), 2):
        if (a + b) % p == 0:
            continue
        col = (a + b) % p - 1
        by_col.setdefault(col, []).append(frozenset((a, b)))
    labels: dict[Cell, frozenset[int]] = {}
    for col, labs in by_col.items():
        labs.sort(key=lambda s: tuple(sorted(s)))
        for row, lab in enumerate(labs, start=1):
            labels[(row, col)] = lab
    return labels


def pcode_layout(p: int) -> CodeLayout:
    """Build the P-Code layout for prime ``p`` (``p - 1`` disks)."""
    if not is_prime(p):
        raise ValueError(f"P-Code requires prime p, got {p}")
    if p < 5:
        raise ValueError("P-Code needs p >= 5")

    labels = pcode_cell_labels(p)
    chains: list[ParityChain] = []
    for j in range(p - 1):
        members = tuple(
            sorted(cell for cell, lab in labels.items() if (j + 1) in lab)
        )
        chains.append(
            ParityChain(parity=(0, j), members=members, kind=ChainKind.DIAGONAL)
        )
    return CodeLayout(
        name="pcode",
        p=p,
        rows=(p - 1) // 2,
        cols=p - 1,
        chains=chains,
    )
