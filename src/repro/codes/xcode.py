"""X-Code — Xu & Bruck (IEEE Trans. Information Theory 1999).

A vertical MDS code: the stripe is ``p x p`` for prime ``p``; rows
``0 .. p-3`` hold data, row ``p-2`` holds diagonal parities and row
``p-1`` anti-diagonal parities:

    C(p-2, i) = XOR_{k=0}^{p-3} C(k, (i + k + 2) mod p)
    C(p-1, i) = XOR_{k=0}^{p-3} C(k, (i - k - 2) mod p)

Every column carries both data and parity, which is why a direct
RAID-5 -> RAID-6 conversion with X-Code must reserve two parity rows per
stripe on the existing disks (the paper's Figure 1(c): 40% reserved
capacity at ``p = 5``).
"""

from __future__ import annotations

from repro.codes.geometry import ChainKind, CodeLayout, ParityChain
from repro.util.primes import is_prime

__all__ = ["xcode_layout"]


def xcode_layout(p: int) -> CodeLayout:
    """Build the X-Code layout for prime ``p``.

    X-Code cannot be column-shortened (every column carries parity whose
    chain spans other columns), so no ``virtual_cols`` parameter exists.
    """
    if not is_prime(p):
        raise ValueError(f"X-Code requires prime p, got {p}")
    if p < 5:
        raise ValueError("X-Code needs p >= 5")

    chains: list[ParityChain] = []
    for i in range(p):
        chains.append(
            ParityChain(
                parity=(p - 2, i),
                members=tuple((k, (i + k + 2) % p) for k in range(p - 2)),
                kind=ChainKind.DIAGONAL,
            )
        )
    for i in range(p):
        chains.append(
            ParityChain(
                parity=(p - 1, i),
                members=tuple((k, (i - k - 2) % p) for k in range(p - 2)),
                kind=ChainKind.DIAGONAL,
            )
        )
    return CodeLayout(
        name="xcode",
        p=p,
        rows=p,
        cols=p,
        chains=chains,
    )
