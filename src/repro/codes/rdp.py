"""RDP (Row-Diagonal Parity) code — Corbett et al., FAST'04.

Stripe is ``(p-1) x (p+1)`` for prime ``p``: columns ``0 .. p-2`` data,
column ``p-1`` row parity, column ``p`` diagonal parity.  Diagonal ``d``
collects the cells ``(r, c)`` with ``(r + c) mod p == d`` across columns
``0 .. p-1`` — the row-parity column participates, which is what gives
RDP its simple two-pass reconstruction.  Diagonal ``p-1`` is the "missing
diagonal" and has no parity.

Shortening: data columns may be declared virtual to support fewer than
``p-1`` data disks (standard RDP practice, used here to build the
``(m, n)`` configurations of the paper's comparison figures).
"""

from __future__ import annotations

from repro.codes.geometry import ChainKind, CodeLayout, ParityChain
from repro.util.primes import is_prime

__all__ = ["rdp_layout"]


def rdp_layout(p: int, virtual_cols: tuple[int, ...] = ()) -> CodeLayout:
    """Build the RDP layout for prime ``p``."""
    if not is_prime(p):
        raise ValueError(f"RDP requires prime p, got {p}")
    if p < 3:
        raise ValueError("RDP needs p >= 3")
    for c in virtual_cols:
        if not 0 <= c < p - 1:
            raise ValueError(f"only data columns (0..{p - 2}) may be virtual, got {c}")

    chains: list[ParityChain] = []
    for i in range(p - 1):
        chains.append(
            ParityChain(
                parity=(i, p - 1),
                members=tuple((i, j) for j in range(p - 1)),
                kind=ChainKind.HORIZONTAL,
            )
        )
    for i in range(p - 1):
        members = tuple(
            (r, c)
            for r in range(p - 1)
            for c in range(p)  # includes the row-parity column p-1
            if (r + c) % p == i and (r, c) != (i, p)
        )
        chains.append(
            ParityChain(parity=(i, p), members=members, kind=ChainKind.DIAGONAL)
        )
    return CodeLayout(
        name="rdp",
        p=p,
        rows=p - 1,
        cols=p + 1,
        chains=chains,
        virtual_cols=frozenset(virtual_cols),
    )
