"""Code 5-6 stripe geometry (the paper's contribution, Section III).

A Code 5-6 stripe is a ``(p-1) x p`` matrix for prime ``p``:

* columns ``0 .. p-2`` form a ``(p-1) x (p-1)`` square that is *exactly*
  a left-asymmetric RAID-5 over ``p-1`` disks — the horizontal parity of
  row ``i`` sits on the anti-diagonal cell ``(i, p-2-i)`` (Eq. 1);
* column ``p-1`` holds one diagonal parity per row (Eq. 2).

Diagonal geometry: give every square cell the diagonal id
``d = (r + c) mod p``.  The anti-diagonal of horizontal parities is
precisely diagonal ``d = p-2``, so every other diagonal contains only
data cells — ``p-2`` of them.  The diagonal parity stored at
``(i, p-1)`` covers diagonal ``d = (i-1) mod p``; as ``i`` runs over
``0 .. p-2``, ``d`` runs over every value except ``p-2``.  This is the
closed form of the paper's Eq. 2 (its example ``C(1,4) = C(0,0) ^
C(3,2) ^ C(2,3)`` is diagonal ``d = 0``).

Consequences proved in tests: each chain XORs ``p-2`` cells (``p-3``
XOR ops, the optimum), each data cell feeds exactly one horizontal and
one diagonal chain (optimal update penalty 2), and the code is MDS.
"""

from __future__ import annotations

from functools import lru_cache

from repro.codes.geometry import Cell, ChainKind, CodeLayout, ParityChain
from repro.util.primes import is_prime

__all__ = [
    "code56_layout",
    "code56_right_layout",
    "horizontal_parity_cell",
    "diagonal_of_cell",
    "diagonal_chain_cells",
    "DIAGONAL_COLUMN",
]

#: Symbolic alias: the diagonal parity always lives in the last column.
DIAGONAL_COLUMN = -1


def horizontal_parity_cell(p: int, row: int) -> Cell:
    """Cell holding the horizontal parity of ``row`` (Eq. 1 placement)."""
    return (row, p - 2 - row)


def diagonal_of_cell(p: int, cell: Cell) -> int:
    """Diagonal id of a square cell: ``(r + c) mod p``."""
    r, c = cell
    return (r + c) % p


@lru_cache(maxsize=None)
def diagonal_chain_cells(p: int, parity_row: int) -> tuple[Cell, ...]:
    """Square cells covered by the diagonal parity at ``(parity_row, p-1)``.

    These are the cells with ``(r + c) mod p == (parity_row - 1) mod p``;
    all are data cells because diagonal ``p-2`` (the horizontal-parity
    anti-diagonal) never appears here.
    """
    d = (parity_row - 1) % p
    return tuple(
        (r, c)
        for r in range(p - 1)
        for c in range(p - 1)
        if (r + c) % p == d
    )


def code56_layout(p: int, virtual_cols: tuple[int, ...] = ()) -> CodeLayout:
    """Build the Code 5-6 layout for prime ``p``.

    ``virtual_cols`` marks shortened data columns (Section IV-B2's virtual
    disks); they must lie in the square (the parity columns cannot be
    virtual) and are excluded from chains at encode time by the runtime,
    not here — geometry keeps the full prime structure.
    """
    if not is_prime(p):
        raise ValueError(f"Code 5-6 requires prime p, got {p}")
    if p < 5:
        raise ValueError("Code 5-6 needs p >= 5 (at least 3 data columns)")
    for c in virtual_cols:
        if not 0 <= c < p - 1:
            raise ValueError(f"virtual column {c} outside data square of p={p}")

    # Virtual-element rule (Section IV-B2): every cell on a virtual disk is
    # virtual, and so is every data cell whose horizontal parity sits on a
    # virtual disk.  Each square column holds exactly one horizontal parity
    # (row p-2-c), so virtual column c additionally voids the data of that
    # row.
    extra: set[Cell] = set()
    for c in virtual_cols:
        parity_row = p - 2 - c
        for j in range(p - 1):
            if j != c:
                extra.add((parity_row, j))

    chains: list[ParityChain] = []
    for i in range(p - 1):
        parity = horizontal_parity_cell(p, i)
        members = tuple((i, j) for j in range(p - 1) if j != parity[1])
        chains.append(ParityChain(parity=parity, members=members, kind=ChainKind.HORIZONTAL))
    for i in range(p - 1):
        chains.append(
            ParityChain(
                parity=(i, p - 1),
                members=diagonal_chain_cells(p, i),
                kind=ChainKind.DIAGONAL,
            )
        )
    return CodeLayout(
        name="code56",
        p=p,
        rows=p - 1,
        cols=p,
        chains=chains,
        virtual_cols=frozenset(virtual_cols),
        extra_virtual_cells=frozenset(extra),
    )


def code56_right_layout(p: int, virtual_cols: tuple[int, ...] = ()) -> CodeLayout:
    """The mirrored Code 5-6 for right-(a)symmetric RAID-5s (Fig. 7).

    Section IV-B1: when the source RAID-5 rotates its parity rightwards
    (parity of stripe ``i`` on disk ``i mod m``), the matching Code 5-6
    variant mirrors the data square horizontally: the horizontal parity
    of row ``i`` sits on the *main* diagonal ``(i, i)`` and the diagonal
    chains run along ``(r - c) mod p``.  Obtained from the left layout by
    the column reflection ``c -> p-2-c`` (the diagonal column stays
    last), so it inherits every optimality property and the MDS proof by
    symmetry — and is certified independently in the tests.

    ``virtual_cols`` are given in *right-layout* coordinates.
    """
    mirrored = tuple(p - 2 - c for c in virtual_cols)
    base = code56_layout(p, virtual_cols=mirrored)

    def reflect(cell: Cell) -> Cell:
        r, c = cell
        return (r, p - 2 - c) if c != p - 1 else (r, c)

    chains = [
        ParityChain(
            parity=reflect(ch.parity),
            members=tuple(sorted(reflect(m) for m in ch.members)),
            kind=ch.kind,
        )
        for ch in base.chains
    ]
    return CodeLayout(
        name="code56-right",
        p=p,
        rows=p - 1,
        cols=p,
        chains=chains,
        virtual_cols=frozenset(virtual_cols),
        extra_virtual_cells=frozenset(reflect(c) for c in base.extra_virtual_cells),
    )
