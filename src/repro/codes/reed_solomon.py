"""Classic RAID-6 Reed-Solomon (P+Q) reference baseline.

Not part of the paper's comparison set (all seven codes there are
XOR-only array codes), but included as the industry-standard horizontal
baseline: ``P = XOR(d_j)`` and ``Q = XOR(g^j * d_j)`` over GF(2^8) with
generator ``g = 2`` — the same scheme as the Linux md RAID-6 driver.

It deliberately does **not** subclass :class:`ArrayCode`: its parity is
not expressible as XOR chains, so it implements the same encode /
verify / decode-columns surface directly.  Each row of the stripe is an
independent codeword, so the "stripe" here is ``(rows, k+2, block)``
with any number of rows.
"""

from __future__ import annotations

import numpy as np

from repro.util.gf256 import gf_inv, gf_mul_blocks, gf_pow

__all__ = ["ReedSolomonRaid6"]


class ReedSolomonRaid6:
    """RAID-6 P+Q code with ``k`` data columns, P at ``k``, Q at ``k+1``."""

    name = "rs"

    def __init__(self, k: int, rows: int = 1):
        if not 2 <= k <= 255:
            raise ValueError("RS RAID-6 supports 2..255 data columns")
        self.k = k
        self.rows = rows
        self.cols = k + 2
        self.p_col = k
        self.q_col = k + 1

    # ------------------------------------------------------------ properties
    @property
    def n_disks(self) -> int:
        return self.cols

    @property
    def num_data(self) -> int:
        return self.rows * self.k

    def storage_efficiency(self) -> float:
        return self.k / self.cols

    # ---------------------------------------------------------------- encode
    def empty_stripe(self, block_size: int = 16) -> np.ndarray:
        return np.zeros((self.rows, self.cols, block_size), dtype=np.uint8)

    def encode(self, stripe: np.ndarray) -> np.ndarray:
        """Fill P and Q columns from the data columns, in place."""
        self._check(stripe)
        p = stripe[:, self.p_col, :]
        q = stripe[:, self.q_col, :]
        p[...] = 0
        q[...] = 0
        scratch = np.empty_like(stripe[:, 0, :])
        for j in range(self.k):
            d = stripe[:, j, :]
            np.bitwise_xor(p, d, out=p)
            gf_mul_blocks(gf_pow(2, j), d, out=scratch)
            np.bitwise_xor(q, scratch, out=q)
        return stripe

    def verify(self, stripe: np.ndarray) -> bool:
        self._check(stripe)
        expect = stripe.copy()
        self.encode(expect)
        return bool(np.array_equal(expect, stripe))

    # ---------------------------------------------------------------- decode
    def decode_columns(self, stripe: np.ndarray, *cols: int) -> np.ndarray:
        """Rebuild up to two failed columns in place."""
        self._check(stripe)
        lost = sorted(set(cols))
        if len(lost) > 2:
            raise ValueError("RAID-6 RS corrects at most two column erasures")
        if not lost:
            return stripe
        for c in lost:
            stripe[:, c, :] = 0

        data_lost = [c for c in lost if c < self.k]
        if not data_lost:
            self.encode(stripe)  # only parity lost: recompute
            return stripe

        if len(data_lost) == 1 and len(lost) == 1:
            self._rebuild_one_data(stripe, data_lost[0], use_q=False)
        elif len(data_lost) == 1:  # one data + one parity column
            use_q = lost[1] == self.p_col or lost[0] == self.p_col
            self._rebuild_one_data(stripe, data_lost[0], use_q=use_q)
            self.encode(stripe)
        else:  # two data columns: solve the 2x2 GF system per row
            self._rebuild_two_data(stripe, data_lost[0], data_lost[1])
        return stripe

    def _rebuild_one_data(self, stripe: np.ndarray, c: int, use_q: bool) -> None:
        if not use_q:
            acc = stripe[:, self.p_col, :].copy()
            for j in range(self.k):
                if j != c:
                    np.bitwise_xor(acc, stripe[:, j, :], out=acc)
            stripe[:, c, :] = acc
            return
        # Q-based: d_c = g^{-c} * (Q ^ XOR g^j d_j, j != c)
        acc = stripe[:, self.q_col, :].copy()
        scratch = np.empty_like(acc)
        for j in range(self.k):
            if j != c:
                gf_mul_blocks(gf_pow(2, j), stripe[:, j, :], out=scratch)
                np.bitwise_xor(acc, scratch, out=acc)
        stripe[:, c, :] = gf_mul_blocks(gf_inv(gf_pow(2, c)), acc)

    def _rebuild_two_data(self, stripe: np.ndarray, c1: int, c2: int) -> None:
        # P' and Q' are the syndromes with the lost columns zeroed.
        p_syn = stripe[:, self.p_col, :].copy()
        q_syn = stripe[:, self.q_col, :].copy()
        scratch = np.empty_like(p_syn)
        for j in range(self.k):
            if j in (c1, c2):
                continue
            np.bitwise_xor(p_syn, stripe[:, j, :], out=p_syn)
            gf_mul_blocks(gf_pow(2, j), stripe[:, j, :], out=scratch)
            np.bitwise_xor(q_syn, scratch, out=q_syn)
        # d1 ^ d2 = p_syn ; g^c1 d1 ^ g^c2 d2 = q_syn
        g1, g2 = gf_pow(2, c1), gf_pow(2, c2)
        denom = gf_inv(g1 ^ g2)
        # d1 = (q_syn ^ g2 * p_syn) / (g1 ^ g2)
        gf_mul_blocks(g2, p_syn, out=scratch)
        np.bitwise_xor(scratch, q_syn, out=scratch)
        d1 = gf_mul_blocks(denom, scratch)
        stripe[:, c1, :] = d1
        np.bitwise_xor(p_syn, d1, out=p_syn)
        stripe[:, c2, :] = p_syn

    # ---------------------------------------------------------------- checks
    def _check(self, stripe: np.ndarray) -> None:
        if stripe.ndim != 3 or stripe.shape[0] != self.rows or stripe.shape[1] != self.cols:
            raise ValueError(
                f"stripe must be ({self.rows}, {self.cols}, block), got {stripe.shape}"
            )
