"""Factory and catalog for the array codes used across the library.

``get_code("rdp", p=5)`` is the single entry point examples, benchmarks
and the migration planner use; keeping construction behind a registry
means "every code in the paper" is a data-driven iteration everywhere
else (``for name in CODE_NAMES``).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.codes.base import ArrayCode
from repro.codes.code56 import code56_layout, code56_right_layout
from repro.codes.evenodd import evenodd_layout
from repro.codes.geometry import CodeLayout
from repro.codes.hcode import hcode_layout
from repro.codes.hdp import hdp_layout
from repro.codes.pcode import pcode_layout
from repro.codes.rdp import rdp_layout
from repro.codes.star import star_layout
from repro.codes.xcode import xcode_layout

__all__ = ["CodeInfo", "CODE_CATALOG", "CODE_NAMES", "get_layout", "get_code", "disks_for"]


@dataclass(frozen=True)
class CodeInfo:
    """Catalog entry describing a code family."""

    name: str
    builder: Callable[..., CodeLayout]
    #: disks used by a full (unshortened) stripe as a function of p
    disks_of_p: Callable[[int], int]
    #: "horizontal" (dedicated parity columns) or "vertical" (parity in-band)
    family: str
    #: can data columns be shortened (virtual)?
    shortenable: bool
    citation: str


CODE_CATALOG: dict[str, CodeInfo] = {
    "code56": CodeInfo(
        name="code56",
        builder=code56_layout,
        disks_of_p=lambda p: p,
        family="hybrid",
        shortenable=True,
        citation="Wu, He, Li, Guo — ICPP 2015 (this paper)",
    ),
    "code56-right": CodeInfo(
        name="code56-right",
        builder=code56_right_layout,
        disks_of_p=lambda p: p,
        family="hybrid",
        shortenable=True,
        citation="Wu, He, Li, Guo — ICPP 2015 (Fig. 7, right-layout variant)",
    ),
    "rdp": CodeInfo(
        name="rdp",
        builder=rdp_layout,
        disks_of_p=lambda p: p + 1,
        family="horizontal",
        shortenable=True,
        citation="Corbett et al. — FAST 2004",
    ),
    "evenodd": CodeInfo(
        name="evenodd",
        builder=evenodd_layout,
        disks_of_p=lambda p: p + 2,
        family="horizontal",
        shortenable=True,
        citation="Blaum, Brady, Bruck, Menon — IEEE ToC 1995",
    ),
    "hcode": CodeInfo(
        name="hcode",
        builder=hcode_layout,
        disks_of_p=lambda p: p + 1,
        family="hybrid",
        shortenable=True,  # column 0 only
        citation="Wu et al. — IPDPS 2011",
    ),
    "xcode": CodeInfo(
        name="xcode",
        builder=xcode_layout,
        disks_of_p=lambda p: p,
        family="vertical",
        shortenable=False,
        citation="Xu, Bruck — IEEE TIT 1999",
    ),
    "pcode": CodeInfo(
        name="pcode",
        builder=pcode_layout,
        disks_of_p=lambda p: p - 1,
        family="vertical",
        shortenable=False,
        citation="Jin, Feng, Jiang, Tian — ICS 2009",
    ),
    "star": CodeInfo(
        name="star",
        builder=star_layout,
        disks_of_p=lambda p: p + 3,
        family="horizontal",
        shortenable=True,
        citation="Huang, Xu — FAST 2005 (triple-fault tolerance)",
    ),
    "hdp": CodeInfo(
        name="hdp",
        builder=hdp_layout,
        disks_of_p=lambda p: p - 1,
        family="vertical",
        shortenable=False,
        citation="Wu et al. — DSN 2011",
    ),
}

#: Paper's comparison order.
CODE_NAMES: tuple[str, ...] = ("evenodd", "rdp", "hcode", "xcode", "pcode", "hdp", "code56")


def get_layout(name: str, p: int, virtual_cols: tuple[int, ...] = ()) -> CodeLayout:
    """Build a layout by registry name."""
    info = CODE_CATALOG.get(name)
    if info is None:
        raise KeyError(f"unknown code {name!r}; known: {sorted(CODE_CATALOG)}")
    if virtual_cols:
        if not info.shortenable:
            raise ValueError(f"{name} cannot be shortened with virtual columns")
        return info.builder(p, virtual_cols=tuple(virtual_cols))
    return info.builder(p)


def get_code(name: str, p: int, virtual_cols: tuple[int, ...] = ()) -> ArrayCode:
    """Build a ready-to-use :class:`ArrayCode` by registry name."""
    return ArrayCode(get_layout(name, p, virtual_cols))


def disks_for(name: str, p: int) -> int:
    """Physical disks of the full (unshortened) code at parameter ``p``."""
    return CODE_CATALOG[name].disks_of_p(p)
