"""Precomputed recovery plans.

Erasure decoding splits into two phases: a *planning* phase that depends
only on the geometry and the erasure pattern (which cells are lost), and
an *apply* phase that XORs payload blocks.  Planning is done once per
pattern with GF(2) elimination and cached; applying is pure vectorised
numpy.  This mirrors how production erasure-code libraries (jerasure,
ISA-L) separate schedule generation from data movement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codes.geometry import Cell


@dataclass(frozen=True)
class RecoveryStep:
    """Recover ``target`` as the XOR of ``sources`` (all must be intact
    or recovered by an earlier step)."""

    target: Cell
    sources: tuple[Cell, ...]

    @property
    def xor_count(self) -> int:
        return max(len(self.sources) - 1, 0)


@dataclass(frozen=True)
class RecoveryPlan:
    """Ordered steps that rebuild every lost cell of an erasure pattern."""

    lost: tuple[Cell, ...]
    steps: tuple[RecoveryStep, ...]

    def __post_init__(self) -> None:
        targets = [s.target for s in self.steps]
        if set(targets) != set(self.lost):
            raise ValueError("plan does not cover exactly the lost cells")
        recovered: set[Cell] = set()
        lost = set(self.lost)
        for step in self.steps:
            for src in step.sources:
                if src in lost and src not in recovered:
                    raise ValueError(
                        f"step for {step.target} reads {src} before it is recovered"
                    )
            recovered.add(step.target)

    @property
    def total_xors(self) -> int:
        return sum(s.xor_count for s in self.steps)

    @property
    def read_set(self) -> frozenset[Cell]:
        """Distinct *surviving* cells the plan reads (recovered intermediates
        excluded) — the paper's single-disk-recovery read-I/O metric."""
        lost = set(self.lost)
        return frozenset(src for s in self.steps for src in s.sources if src not in lost)

    @property
    def total_reads(self) -> int:
        return len(self.read_set)
