"""H-Code — Wu, He, et al. (IPDPS 2011).

A hybrid MDS code over ``p + 1`` disks: the stripe is ``(p-1) x (p+1)``;
column ``p`` is a dedicated horizontal-parity column (RAID-4 style), and
the anti-diagonal parities are *distributed* over the data square like a
RAID-5 — parity cell ``(i, p-1-i)`` for each row ``i``, i.e. the full
anti-diagonal ``(r + c) mod p == p - 1`` of columns ``0 .. p-1``.

Chains:

* horizontal: row ``i`` over columns ``0 .. p-1`` minus its own
  anti-diagonal parity cell;
* anti-diagonal: parity ``(i, p-1-i)`` covers the square cells with
  ``(r + c) mod p == (p - 2 - i) mod p``.

The anti-diagonal chain assignment was recovered by constrained search
over the published layout and is certified MDS exhaustively in the test
suite for ``p`` in {5, 7, 11, 13}.  Because the horizontal parities form
a dedicated column and the anti-diagonal parity cells align with a
right-asymmetric RAID-5's rotating parity, H-Code's cheapest conversion
path starts from a right-asymmetric RAID-5 (per the paper's
methodology discussion).
"""

from __future__ import annotations

from repro.codes.geometry import ChainKind, CodeLayout, ParityChain
from repro.util.primes import is_prime

__all__ = ["hcode_layout", "anti_diagonal_parity_cell"]


def anti_diagonal_parity_cell(p: int, row: int) -> tuple[int, int]:
    """Anti-diagonal parity placement for ``row`` (column ``p-1-row``)."""
    return (row, p - 1 - row)


def hcode_layout(p: int, virtual_cols: tuple[int, ...] = ()) -> CodeLayout:
    """Build the H-Code layout for prime ``p``."""
    if not is_prime(p):
        raise ValueError(f"H-Code requires prime p, got {p}")
    if p < 5:
        raise ValueError("H-Code needs p >= 5")
    anti_parities = {anti_diagonal_parity_cell(p, i) for i in range(p - 1)}
    for c in virtual_cols:
        if not 0 <= c < p:
            raise ValueError(f"virtual column {c} outside square columns 0..{p - 1}")
        if any(cell[1] == c for cell in anti_parities):
            # Shortening a column that carries an anti-diagonal parity would
            # orphan that chain; only column 0 is parity-free... every
            # column 1..p-1 carries one anti parity, so only column 0 works.
            if c != 0:
                raise ValueError(
                    "H-Code can only shorten column 0 (all other square "
                    "columns carry an anti-diagonal parity)"
                )

    chains: list[ParityChain] = []
    for i in range(p - 1):
        anti = anti_diagonal_parity_cell(p, i)
        members = tuple((i, j) for j in range(p) if (i, j) != anti)
        chains.append(
            ParityChain(parity=(i, p), members=members, kind=ChainKind.HORIZONTAL)
        )
    for i in range(p - 1):
        target = (p - 2 - i) % p
        members = tuple(
            (r, c)
            for r in range(p - 1)
            for c in range(p)
            if (r + c) % p == target
        )
        chains.append(
            ParityChain(
                parity=anti_diagonal_parity_cell(p, i),
                members=members,
                kind=ChainKind.DIAGONAL,
            )
        )
    return CodeLayout(
        name="hcode",
        p=p,
        rows=p - 1,
        cols=p + 1,
        chains=chains,
        virtual_cols=frozenset(virtual_cols),
    )
