"""MDS certification of a :class:`CodeLayout`.

A RAID-6 array code is MDS when (a) it stores exactly ``n - 2`` disks'
worth of data on ``n`` disks and (b) any two whole-column erasures are
recoverable.  ``certify_mds`` checks both by attempting to *plan* the
recovery of every column pair — planning succeeds iff the GF(2) system is
uniquely solvable, so no payload needs to be touched.  Tests additionally
round-trip payloads through the plans for defence in depth.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.codes.decoder import UnrecoverableError, build_recovery_plan
from repro.codes.geometry import CodeLayout

__all__ = ["MdsReport", "certify_mds", "check_double_erasures"]


@dataclass(frozen=True)
class MdsReport:
    """Outcome of a certification run."""

    layout_name: str
    p: int
    is_mds: bool
    storage_optimal: bool
    failed_pairs: tuple[tuple[int, ...], ...]

    def __bool__(self) -> bool:
        return self.is_mds and self.storage_optimal


def check_erasures(layout: CodeLayout, tolerance: int = 2) -> list[tuple[int, ...]]:
    """Return every ``tolerance``-sized column set whose erasure is
    unrecoverable."""
    failures: list[tuple[int, ...]] = []
    cols = layout.physical_cols
    for combo in itertools.combinations(cols, tolerance):
        lost = tuple(
            (r, c)
            for c in combo
            for r in range(layout.rows)
            if (r, c) not in layout.virtual_cells
        )
        try:
            build_recovery_plan(layout, lost)
        except UnrecoverableError:
            failures.append(combo)
    return failures


def check_double_erasures(layout: CodeLayout) -> list[tuple[int, int]]:
    """Return every physical column pair whose erasure is unrecoverable."""
    return [tuple(c) for c in check_erasures(layout, 2)]  # type: ignore[misc]


def certify_mds(layout: CodeLayout, tolerance: int = 2) -> MdsReport:
    """Exhaustively certify ``tolerance``-erasure recovery and the
    storage bound.

    ``storage_optimal`` compares data cells against the MDS capacity
    ``(n - tolerance) * rows`` of the *physical* stripe; shortened
    layouts with extra virtual cells (e.g. Code 5-6 over virtual disks)
    legitimately fall below it and report ``storage_optimal=False``
    while still being erasure-recoverable.
    """
    failed = tuple(tuple(c) for c in check_erasures(layout, tolerance))
    n = layout.n_disks
    capacity = (n - tolerance) * layout.rows
    return MdsReport(
        layout_name=layout.name,
        p=layout.p,
        is_mds=not failed,
        storage_optimal=layout.num_data == capacity,
        failed_pairs=failed,
    )
