"""EVENODD code — Blaum, Brady, Bruck, Menon (IEEE ToC 1995).

Stripe is ``(p-1) x (p+2)`` for prime ``p``: columns ``0 .. p-1`` data,
column ``p`` row parity, column ``p+1`` diagonal parity.  The diagonal
parities share the *adjuster* ``S`` — the XOR of the cells on diagonal
``p-1`` — which EVENODD folds into every diagonal parity:

    Q_i = S ^ XOR{ C(r, c) : (r + c) mod p == i, 0 <= c <= p-1 }

In the chain representation the adjuster simply appends the diagonal
``p-1`` cells to every diagonal chain; cells appearing twice would cancel
but the two diagonals are disjoint, so no cancellation occurs.
"""

from __future__ import annotations

from repro.codes.geometry import ChainKind, CodeLayout, ParityChain
from repro.util.primes import is_prime

__all__ = ["evenodd_layout", "adjuster_cells"]


def adjuster_cells(p: int) -> tuple[tuple[int, int], ...]:
    """Cells of diagonal ``p-1`` whose XOR is the EVENODD adjuster ``S``."""
    return tuple(
        (r, c)
        for r in range(p - 1)
        for c in range(p)
        if (r + c) % p == p - 1
    )


def evenodd_layout(p: int, virtual_cols: tuple[int, ...] = ()) -> CodeLayout:
    """Build the EVENODD layout for prime ``p``."""
    if not is_prime(p):
        raise ValueError(f"EVENODD requires prime p, got {p}")
    if p < 3:
        raise ValueError("EVENODD needs p >= 3")
    for c in virtual_cols:
        if not 0 <= c < p:
            raise ValueError(f"only data columns (0..{p - 1}) may be virtual, got {c}")

    s_cells = adjuster_cells(p)
    chains: list[ParityChain] = []
    for i in range(p - 1):
        chains.append(
            ParityChain(
                parity=(i, p),
                members=tuple((i, j) for j in range(p)),
                kind=ChainKind.HORIZONTAL,
            )
        )
    for i in range(p - 1):
        diag = tuple(
            (r, c)
            for r in range(p - 1)
            for c in range(p)
            if (r + c) % p == i
        )
        chains.append(
            ParityChain(parity=(i, p + 1), members=diag + s_cells, kind=ChainKind.DIAGONAL)
        )
    return CodeLayout(
        name="evenodd",
        p=p,
        rows=p - 1,
        cols=p + 2,
        chains=chains,
        virtual_cols=frozenset(virtual_cols),
    )
