"""Generic erasure decoder for any :class:`CodeLayout`.

Works for *every* code in the library: the chain equations are assembled
into a GF(2) linear system over the lost cells, eliminated once, and the
row-transform is re-read as "lost cell = XOR of these surviving cells".
The result is a :class:`RecoveryPlan` that the apply step replays over
payload blocks with vectorised XOR.

Code 5-6 additionally ships the paper's two-recovery-chain decoder
(:mod:`repro.core.chain_decoder`), which produces cheaper sequential
plans; this module is the correctness oracle it is tested against.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.codes.geometry import Cell, CodeLayout
from repro.codes.plans import RecoveryPlan, RecoveryStep
from repro.util.gf2 import gf2_elimination


class UnrecoverableError(Exception):
    """The erasure pattern exceeds the code's correction capability."""


def build_recovery_plan(layout: CodeLayout, lost_cells: tuple[Cell, ...]) -> RecoveryPlan:
    """Plan the recovery of ``lost_cells`` (order-insensitive, deduplicated).

    Raises :class:`UnrecoverableError` when the cells cannot be uniquely
    determined from the surviving cells — e.g. three full columns of an
    MDS RAID-6 code.
    """
    lost = tuple(dict.fromkeys(lost_cells))
    virtual = layout.virtual_cells
    lost = tuple(cell for cell in lost if cell not in virtual)
    if not lost:
        return RecoveryPlan(lost=(), steps=())
    index = {cell: i for i, cell in enumerate(lost)}

    rows: list[np.ndarray] = []
    sources: list[set[Cell]] = []
    for chain in layout.chains:
        coeffs = np.zeros(len(lost), dtype=np.uint8)
        known: set[Cell] = set()
        for cell in (chain.parity, *chain.members):
            if cell in virtual:
                continue  # virtual cells are identically zero
            i = index.get(cell)
            if i is None:
                known.symmetric_difference_update({cell})
            else:
                coeffs[i] ^= 1
        if coeffs.any():
            rows.append(coeffs)
            sources.append(known)
    if not rows:
        raise UnrecoverableError(f"no chain touches the lost cells {lost}")

    matrix = np.vstack(rows)
    rref, transform, pivots = gf2_elimination(matrix)
    if len(pivots) < len(lost):
        raise UnrecoverableError(
            f"{layout.name}: erasure pattern {lost} is not recoverable"
        )

    steps: list[RecoveryStep] = []
    for out_row, col in enumerate(pivots):
        # rref row must be a unit vector: exactly the unknown `col`.
        if rref[out_row].sum() != 1:
            raise UnrecoverableError(
                f"{layout.name}: unknowns {lost} are entangled (non-MDS pattern)"
            )
        combined: set[Cell] = set()
        for eq, used in enumerate(transform[out_row]):
            if used:
                combined.symmetric_difference_update(sources[eq])
        steps.append(RecoveryStep(target=lost[col], sources=tuple(sorted(combined))))
    return RecoveryPlan(lost=lost, steps=tuple(steps))


def apply_recovery_plan(plan: RecoveryPlan, stripe: np.ndarray) -> np.ndarray:
    """Execute ``plan`` in place on ``stripe``.

    ``stripe`` has shape ``(rows, cols, block)`` or ``(batch, rows, cols,
    block)``; lost cells are overwritten with their recovered content.
    """
    batched = stripe.ndim == 4
    for step in plan.steps:
        if not step.sources:
            target = stripe[..., step.target[0], step.target[1], :] if batched else stripe[step.target]
            target[...] = 0
            continue
        if batched:
            views = [stripe[:, r, c, :] for (r, c) in step.sources]
            out = stripe[:, step.target[0], step.target[1], :]
        else:
            views = [stripe[r, c] for (r, c) in step.sources]
            out = stripe[step.target]
        np.copyto(out, views[0])
        for v in views[1:]:
            np.bitwise_xor(out, v, out=out)
    return stripe


class PlanCache:
    """Per-layout memoisation of recovery plans keyed by erasure pattern."""

    def __init__(self, layout: CodeLayout, maxsize: int = 4096):
        self._layout = layout

        @lru_cache(maxsize=maxsize)
        def _plan(lost: tuple[Cell, ...]) -> RecoveryPlan:
            return build_recovery_plan(layout, lost)

        self._plan = _plan

    def plan_for_cells(self, lost_cells: tuple[Cell, ...]) -> RecoveryPlan:
        return self._plan(tuple(sorted(set(lost_cells))))

    def plan_for_columns(self, *cols: int) -> RecoveryPlan:
        cells = tuple(
            (r, c)
            for c in sorted(set(cols))
            for r in range(self._layout.rows)
            if (r, c) not in self._layout.virtual_cells
        )
        return self._plan(cells)
