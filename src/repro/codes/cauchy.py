"""Cauchy Reed-Solomon erasure coding over GF(2^8).

One of the related-work families the paper cites (Blomer et al. 1995):
a general ``(k, m)`` MDS code — any ``m`` erasures recoverable — built
from a Cauchy matrix, which is invertible in every square submatrix.
Included as the library's arbitrary-fault-tolerance baseline (the paper's
Section II points to these codes for >2 failures in cloud systems).

Encoding: ``c_i = sum_j M[i][j] * d_j`` over GF(2^8) with
``M[i][j] = 1 / (x_i + y_j)`` for distinct ``x_i`` (parity ids) and
``y_j`` (data ids).  Decoding solves the surviving system by Gaussian
elimination over the field.  All payload math is table-driven numpy.
"""

from __future__ import annotations

import numpy as np

from repro.util.gf256 import gf_inv, gf_mul, gf_mul_blocks

__all__ = ["CauchyReedSolomon"]


class CauchyReedSolomon:
    """A ``(k + m)``-column erasure code tolerating any ``m`` losses.

    Columns ``0..k-1`` are data, ``k..k+m-1`` parity.  A stripe is
    ``(cols, block_size)`` uint8.
    """

    name = "cauchy-rs"

    def __init__(self, k: int, m: int):
        if k < 1 or m < 1:
            raise ValueError("need k >= 1 data and m >= 1 parity columns")
        if k + m > 256:
            raise ValueError("GF(2^8) Cauchy construction supports k + m <= 256")
        self.k = k
        self.m = m
        self.cols = k + m
        # x_i = i (parities), y_j = m + j (data): all distinct in GF(256)
        self.matrix = np.zeros((m, k), dtype=np.uint8)
        for i in range(m):
            for j in range(k):
                self.matrix[i, j] = gf_inv(i ^ (m + j))

    # ---------------------------------------------------------------- codec
    def empty_stripe(self, block_size: int = 16) -> np.ndarray:
        return np.zeros((self.cols, block_size), dtype=np.uint8)

    def encode(self, stripe: np.ndarray) -> np.ndarray:
        """Fill the parity columns from the data columns, in place."""
        self._check(stripe)
        scratch = np.empty_like(stripe[0])
        for i in range(self.m):
            out = stripe[self.k + i]
            out[...] = 0
            for j in range(self.k):
                gf_mul_blocks(int(self.matrix[i, j]), stripe[j], out=scratch)
                np.bitwise_xor(out, scratch, out=out)
        return stripe

    def verify(self, stripe: np.ndarray) -> bool:
        self._check(stripe)
        expect = stripe.copy()
        self.encode(expect)
        return bool(np.array_equal(expect, stripe))

    def decode(self, stripe: np.ndarray, lost: tuple[int, ...]) -> np.ndarray:
        """Rebuild up to ``m`` lost columns in place."""
        self._check(stripe)
        lost = tuple(sorted(set(lost)))
        if len(lost) > self.m:
            raise ValueError(f"{len(lost)} erasures exceed tolerance {self.m}")
        if not lost:
            return stripe
        for c in lost:
            if not 0 <= c < self.cols:
                raise ValueError(f"column {c} out of range")
            stripe[c, :] = 0
        lost_data = [c for c in lost if c < self.k]
        if lost_data:
            self._solve_data(stripe, lost_data, set(lost))
        # parities are recomputable once the data is whole
        if any(c >= self.k for c in lost):
            self.encode(stripe)
        return stripe

    def _solve_data(self, stripe: np.ndarray, lost_data: list[int], lost: set[int]) -> None:
        """Gaussian elimination over GF(2^8) for the lost data columns."""
        surviving_parities = [i for i in range(self.m) if (self.k + i) not in lost]
        u = len(lost_data)
        if len(surviving_parities) < u:
            raise ValueError("not enough surviving parities")  # pragma: no cover
        rows = surviving_parities[:u]
        # A x = b with A the Cauchy submatrix over the lost data columns
        a = np.array(
            [[int(self.matrix[i, j]) for j in lost_data] for i in rows],
            dtype=np.int32,
        )
        # b_i = parity_i ^ sum over surviving data of M[i][j] * d_j
        bs = stripe.shape[1]
        b = np.zeros((u, bs), dtype=np.uint8)
        scratch = np.empty(bs, dtype=np.uint8)
        for r, i in enumerate(rows):
            np.copyto(b[r], stripe[self.k + i])
            for j in range(self.k):
                if j in lost_data:
                    continue
                gf_mul_blocks(int(self.matrix[i, j]), stripe[j], out=scratch)
                np.bitwise_xor(b[r], scratch, out=b[r])
        # eliminate
        for col in range(u):
            piv = next(r for r in range(col, u) if a[r, col] != 0)
            if piv != col:
                a[[col, piv]] = a[[piv, col]]
                b[[col, piv]] = b[[piv, col]]
            inv = gf_inv(int(a[col, col]))
            for c in range(u):
                a[col, c] = gf_mul(inv, int(a[col, c]))
            b[col] = gf_mul_blocks(inv, b[col])
            for r in range(u):
                if r == col or a[r, col] == 0:
                    continue
                factor = int(a[r, col])
                for c in range(u):
                    a[r, c] ^= gf_mul(factor, int(a[col, c]))
                gf_mul_blocks(factor, b[col], out=scratch)
                np.bitwise_xor(b[r], scratch, out=b[r])
        for r, j in enumerate(lost_data):
            stripe[j] = b[r]

    # ---------------------------------------------------------------- misc
    def storage_efficiency(self) -> float:
        return self.k / self.cols

    def _check(self, stripe: np.ndarray) -> None:
        if stripe.ndim != 2 or stripe.shape[0] != self.cols:
            raise ValueError(f"stripe must be ({self.cols}, block), got {stripe.shape}")
