"""Stripe geometry shared by every array code.

An array code is described *declaratively* as a grid of cells plus a set
of parity chains.  Encoding, generic decoding, MDS certification, update
analysis and conversion planning all operate on this one representation,
so each concrete code (Code 5-6, RDP, EVENODD, ...) only has to state its
layout — no per-code encode/decode logic is duplicated.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import cached_property

Cell = tuple[int, int]  # (row, col) within one stripe


class CellKind(enum.Enum):
    """Role of a cell inside a stripe."""

    DATA = "data"
    HORIZONTAL = "horizontal"  # row/horizontal parity (P)
    DIAGONAL = "diagonal"  # diagonal/anti-diagonal parity (Q)
    VIRTUAL = "virtual"  # shortened (imaginary, always-zero) cell


class ChainKind(enum.Enum):
    """Family a parity chain belongs to (used for update/recovery policy)."""

    HORIZONTAL = "horizontal"
    DIAGONAL = "diagonal"


@dataclass(frozen=True)
class ParityChain:
    """One parity equation: ``stripe[parity] = XOR(stripe[m] for m in members)``.

    ``members`` may include other parity cells (RDP's diagonals cover the
    row-parity column; HDP's anti-diagonals cover horizontal parities), in
    which case the layout's ``encode_order`` resolves dependencies.
    """

    parity: Cell
    members: tuple[Cell, ...]
    kind: ChainKind

    def __post_init__(self) -> None:
        if self.parity in self.members:
            raise ValueError(f"chain parity {self.parity} listed among its members")
        if len(set(self.members)) != len(self.members):
            raise ValueError(f"chain at {self.parity} has duplicate members")

    @property
    def xor_count(self) -> int:
        """XOR operations needed to evaluate this chain once."""
        return max(len(self.members) - 1, 0)


@dataclass
class CodeLayout:
    """Complete declarative geometry of one stripe.

    Attributes
    ----------
    name:
        Registry name of the code (``"code56"``, ``"rdp"``, ...).
    p:
        The prime parameter the construction is built from.
    rows, cols:
        Stripe dimensions; ``cols`` equals the number of disks ``n``.
    chains:
        All parity equations.
    virtual_cols:
        Columns that are *shortened away* (treated as all-zero, occupying
        no physical disk).  Used both for fitting codes to non-prime disk
        counts and for the paper's virtual-disk conversion trick.
    extra_virtual_cells:
        Individual cells that are virtual although their column is
        physical.  The paper's virtual-disk rule (Section IV-B2) makes a
        data cell virtual when its parity lands on a virtual disk; those
        cells live on real disks but hold no data (NULL).
    """

    name: str
    p: int
    rows: int
    cols: int
    chains: list[ParityChain]
    virtual_cols: frozenset[int] = field(default_factory=frozenset)
    extra_virtual_cells: frozenset[Cell] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        seen: set[Cell] = set()
        for chain in self.chains:
            if chain.parity in seen:
                raise ValueError(f"two chains share parity cell {chain.parity}")
            seen.add(chain.parity)
            for cell in (chain.parity, *chain.members):
                r, c = cell
                if not (0 <= r < self.rows and 0 <= c < self.cols):
                    raise ValueError(f"cell {cell} outside {self.rows}x{self.cols} stripe")

    # ------------------------------------------------------------------ sets
    @cached_property
    def parity_cells(self) -> frozenset[Cell]:
        return frozenset(chain.parity for chain in self.chains)

    @cached_property
    def virtual_cells(self) -> frozenset[Cell]:
        by_col = frozenset(
            (r, c) for r in range(self.rows) for c in self.virtual_cols
        )
        return by_col | self.extra_virtual_cells

    @cached_property
    def data_cells(self) -> tuple[Cell, ...]:
        """All real (non-parity, non-virtual) cells, row-major."""
        return tuple(
            (r, c)
            for r in range(self.rows)
            for c in range(self.cols)
            if (r, c) not in self.parity_cells and (r, c) not in self.virtual_cells
        )

    @cached_property
    def physical_cols(self) -> tuple[int, ...]:
        return tuple(c for c in range(self.cols) if c not in self.virtual_cols)

    @property
    def n_disks(self) -> int:
        return len(self.physical_cols)

    @property
    def num_data(self) -> int:
        return len(self.data_cells)

    @property
    def num_parity(self) -> int:
        return len(self.parity_cells)

    # ----------------------------------------------------------- cell lookup
    def kind(self, cell: Cell) -> CellKind:
        r, c = cell
        if cell in self.virtual_cells:
            return CellKind.VIRTUAL
        chain = self.chain_of_parity.get(cell)
        if chain is None:
            return CellKind.DATA
        if chain.kind is ChainKind.HORIZONTAL:
            return CellKind.HORIZONTAL
        return CellKind.DIAGONAL

    @cached_property
    def chain_of_parity(self) -> dict[Cell, ParityChain]:
        return {chain.parity: chain for chain in self.chains}

    @cached_property
    def chains_of_cell(self) -> dict[Cell, tuple[ParityChain, ...]]:
        """Chains each cell participates in as a *member*."""
        out: dict[Cell, list[ParityChain]] = {}
        for chain in self.chains:
            for m in chain.members:
                out.setdefault(m, []).append(chain)
        return {cell: tuple(chains) for cell, chains in out.items()}

    def update_penalty(self, cell: Cell) -> int:
        """Parity writes triggered by a single write to ``cell``.

        Counts chains reachable transitively (a parity member of another
        chain propagates the update).  Optimal is 2 for RAID-6.
        """
        touched: set[Cell] = set()
        frontier = [cell]
        while frontier:
            cur = frontier.pop()
            for chain in self.chains_of_cell.get(cur, ()):
                if chain.parity not in touched:
                    touched.add(chain.parity)
                    frontier.append(chain.parity)
        return len(touched)

    # ---------------------------------------------------------- encode order
    @cached_property
    def encode_order(self) -> tuple[ParityChain, ...]:
        """Chains sorted so every parity member is computed before use."""
        ready: set[Cell] = set(self.data_cells) | self.virtual_cells
        pending = list(self.chains)
        order: list[ParityChain] = []
        while pending:
            progress = []
            for chain in pending:
                if all(m in ready or m not in self.parity_cells for m in chain.members):
                    progress.append(chain)
            if not progress:
                cycle = [c.parity for c in pending]
                raise ValueError(f"cyclic parity dependency among {cycle}")
            for chain in progress:
                order.append(chain)
                ready.add(chain.parity)
                pending.remove(chain)
        return tuple(order)

    # ------------------------------------------------------------- summaries
    def column_cells(self, col: int) -> tuple[Cell, ...]:
        return tuple((r, col) for r in range(self.rows))

    def xor_count_total(self) -> int:
        """XORs to encode one full stripe (virtual members are free)."""
        total = 0
        for chain in self.chains:
            real = [m for m in chain.members if m not in self.virtual_cells]
            total += max(len(real) - 1, 0)
        return total

    def describe(self) -> str:
        """Human-readable ASCII rendering of the stripe layout."""
        glyph = {
            CellKind.DATA: " D ",
            CellKind.HORIZONTAL: " H ",
            CellKind.DIAGONAL: " Q ",
            CellKind.VIRTUAL: " . ",
        }
        lines = [f"{self.name} (p={self.p}) {self.rows}x{self.cols}"]
        for r in range(self.rows):
            lines.append("".join(glyph[self.kind((r, c))] for c in range(self.cols)))
        return "\n".join(lines)
