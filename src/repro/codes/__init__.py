"""Erasure-code framework: geometry, runtime, decoding, baselines.

The paper's contribution (Code 5-6) and all six comparison codes are
declared as :class:`CodeLayout` geometries and run through one shared
:class:`ArrayCode` engine.  Use :func:`get_code` to construct any of
them by name.
"""

from repro.codes.base import ArrayCode
from repro.codes.code56 import code56_layout
from repro.codes.decoder import (
    PlanCache,
    UnrecoverableError,
    apply_recovery_plan,
    build_recovery_plan,
)
from repro.codes.evenodd import evenodd_layout
from repro.codes.geometry import Cell, CellKind, ChainKind, CodeLayout, ParityChain
from repro.codes.hcode import hcode_layout
from repro.codes.hdp import hdp_layout
from repro.codes.mds import MdsReport, certify_mds, check_double_erasures
from repro.codes.pcode import pcode_layout
from repro.codes.plans import RecoveryPlan, RecoveryStep
from repro.codes.rdp import rdp_layout
from repro.codes.reed_solomon import ReedSolomonRaid6
from repro.codes.registry import CODE_CATALOG, CODE_NAMES, CodeInfo, disks_for, get_code, get_layout
from repro.codes.xcode import xcode_layout

__all__ = [
    "ArrayCode",
    "Cell",
    "CellKind",
    "ChainKind",
    "CodeLayout",
    "ParityChain",
    "RecoveryPlan",
    "RecoveryStep",
    "PlanCache",
    "UnrecoverableError",
    "apply_recovery_plan",
    "build_recovery_plan",
    "MdsReport",
    "certify_mds",
    "check_double_erasures",
    "CODE_CATALOG",
    "CODE_NAMES",
    "CodeInfo",
    "disks_for",
    "get_code",
    "get_layout",
    "code56_layout",
    "rdp_layout",
    "evenodd_layout",
    "xcode_layout",
    "pcode_layout",
    "hcode_layout",
    "hdp_layout",
    "ReedSolomonRaid6",
]

from repro.codes.cauchy import CauchyReedSolomon
from repro.codes.code56 import code56_right_layout

__all__ += ["CauchyReedSolomon", "code56_right_layout"]

from repro.codes.mds import check_erasures
from repro.codes.star import star_layout

__all__ += ["check_erasures", "star_layout"]
