"""STAR code — Huang & Xu (FAST'05): triple-fault tolerance.

The natural growth path after the RAID-6 migration (and one of the
related-work codes of Section II): STAR extends EVENODD with a third
parity column so that any *three* concurrent disk failures are
recoverable.  The stripe is ``(p-1) x (p+3)``:

* columns ``0..p-1`` data;
* column ``p`` row parities;
* column ``p+1`` diagonal parities along ``(r + c) mod p`` with the
  EVENODD adjuster ``S1`` (diagonal ``p-1``);
* column ``p+2`` anti-diagonal parities along ``(r - c) mod p`` with its
  own adjuster ``S2`` (anti-diagonal ``p-1``).

Nothing new is needed to decode it: the generic GF(2) planner handles
three-column erasures exactly as it handles two, and the certification
below is exhaustive over all column triples.
"""

from __future__ import annotations

from repro.codes.geometry import Cell, ChainKind, CodeLayout, ParityChain
from repro.util.primes import is_prime

__all__ = ["star_layout", "anti_adjuster_cells"]


def anti_adjuster_cells(p: int) -> tuple[Cell, ...]:
    """Cells of anti-diagonal ``p-1`` (the third column's adjuster S2)."""
    return tuple(
        (r, c) for r in range(p - 1) for c in range(p) if (r - c) % p == p - 1
    )


def star_layout(p: int, virtual_cols: tuple[int, ...] = ()) -> CodeLayout:
    """Build the STAR layout for prime ``p`` (``p + 3`` disks)."""
    if not is_prime(p):
        raise ValueError(f"STAR requires prime p, got {p}")
    if p < 3:
        raise ValueError("STAR needs p >= 3")
    for c in virtual_cols:
        if not 0 <= c < p:
            raise ValueError(f"only data columns (0..{p - 1}) may be virtual, got {c}")

    chains: list[ParityChain] = []
    for i in range(p - 1):
        chains.append(
            ParityChain(
                parity=(i, p),
                members=tuple((i, j) for j in range(p)),
                kind=ChainKind.HORIZONTAL,
            )
        )
    s1 = tuple((r, c) for r in range(p - 1) for c in range(p) if (r + c) % p == p - 1)
    for i in range(p - 1):
        diag = tuple(
            (r, c) for r in range(p - 1) for c in range(p) if (r + c) % p == i
        )
        chains.append(
            ParityChain(parity=(i, p + 1), members=diag + s1, kind=ChainKind.DIAGONAL)
        )
    s2 = anti_adjuster_cells(p)
    for i in range(p - 1):
        anti = tuple(
            (r, c) for r in range(p - 1) for c in range(p) if (r - c) % p == i
        )
        chains.append(
            ParityChain(parity=(i, p + 2), members=anti + s2, kind=ChainKind.DIAGONAL)
        )
    return CodeLayout(
        name="star",
        p=p,
        rows=p - 1,
        cols=p + 3,
        chains=chains,
        virtual_cols=frozenset(virtual_cols),
    )
