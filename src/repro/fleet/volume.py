"""One fleet volume: array + converter + health + QoS, as a tick-domain task.

A :class:`FleetVolume` owns everything about one migrating volume — the
(possibly externally backed) :class:`~repro.raid.array.BlockArray`, the
:class:`~repro.migration.online.OnlineCode56Conversion`, its
:class:`~repro.faults.journal.OnlineJournal` watermark, the fault plane,
the health state machine and the QoS arbitration — and replays a seeded
foreground schedule against the conversion in one deterministic
cooperative loop.  Volumes share **no** mutable state except the
:class:`~repro.fleet.spares.SparePool`, so a thread pool may run many of
them concurrently and the per-volume results (hence the merged fleet
report) are bit-stable regardless of OS scheduling.

The background scheduler inside :meth:`run` arbitrates three kinds of
work between foreground arrivals:

1. **rebuild** (priority): a staged row-XOR reconstruction of a failed
   data disk onto its hot spare.  Staging interleaves with foreground
   traffic (the disk stays failed, so reads keep reconstructing);
   foreground writes that land in already-staged stripes dirty them for
   re-staging; the final commit — replace the disk, write the staged
   image — is one atomic slice bounded by the stripe count.  Rebuild
   spends token-bucket bandwidth but ignores the circuit breaker:
   restoring redundancy outranks latency.
2. **conversion**: Algorithm 2 steps (per-parity or batched runs),
   token-bucket-gated and paused while the breaker is open.  A pause
   discards the in-memory converter; resume constructs a fresh one from
   the journal, which re-validates every mark — literally "resume from
   the journal watermark", the same transition the model checker proves
   safe (its ``P`` rule).
3. **scrub**: idle-slack parity verification once conversion has
   drained, plus one full pass before the volume reports complete.

Completion is audited two ways: the converter's own Code 5-6 stripe
audit, and a byte-for-byte comparison against the analytically
constructed offline-conversion image of the final logical data (RAID-5
rows + Code 5-6 diagonals over the truth model) — zero divergence means
the online migration landed exactly where an offline conversion of the
same writes would have.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.codes.code56 import diagonal_chain_cells
from repro.faults.errors import ConversionCrash
from repro.faults.events import DiskFailureEvent
from repro.faults.plane import FaultPlane
from repro.faults.spec import FaultScenario
from repro.fleet.health import VolumeHealth, VolumeState
from repro.fleet.qos import CircuitBreaker, QosTarget, TokenBucket
from repro.fleet.spares import ScrubCursor, SparePool
from repro.raid.array import BlockArray
from repro.raid.layouts import Raid5Layout, locate_block, parity_disk
from repro.raid.raid5 import Raid5Array

__all__ = ["VolumeSpec", "FleetVolume"]

#: resume attempts per volume before declaring the crash schedule hostile
_MAX_CRASH_RESUMES = 8


@dataclass(frozen=True)
class VolumeSpec:
    """Deterministic recipe for one fleet volume (all seeds explicit)."""

    volume_id: int
    p: int = 5
    groups: int = 2
    block_size: int = 8
    seed: int = 0
    tenant: str = "default"
    n_requests: int = 12
    batch: int = 1
    qos: QosTarget = QosTarget()
    #: background-bandwidth bucket (tokens/tick, burst)
    bucket_rate: float = 1.0
    bucket_burst: float = 32.0
    #: time-domain disk failures handled by the fleet (spare + rebuild)
    failures: tuple[DiskFailureEvent, ...] = ()
    #: plane-level faults (sector errors, transients, crash points)
    scenario: FaultScenario = field(default_factory=FaultScenario)

    @property
    def rows(self) -> int:
        return self.p - 1

    @property
    def capacity_blocks(self) -> int:
        return self.groups * self.rows * (self.p - 2)


class FleetVolume:
    """One volume's full migration lifecycle under live traffic."""

    def __init__(self, spec: VolumeSpec, buffer: np.ndarray | None = None):
        from repro.migration.online import OnlineCode56Conversion, OnlineReport

        self.spec = spec
        self._conv_cls = OnlineCode56Conversion
        p, rows, bs = spec.p, spec.rows, spec.block_size
        self.m = p - 1
        stripes = spec.groups * rows
        data_rng = np.random.default_rng((spec.seed, spec.volume_id, 0))
        self.data = data_rng.integers(
            0, 256, size=(spec.capacity_blocks, bs), dtype=np.uint8
        )
        # p disks up front (the hot-added diagonal disk is column m) so
        # an externally backed store — one slice of the fleet's shared
        # segment — needs no resize
        if buffer is not None:
            self.array = BlockArray(p, stripes, block_size=bs, buffer=buffer)
        else:
            self.array = BlockArray(p, stripes, block_size=bs)
        self.layout = Raid5Layout.LEFT_ASYMMETRIC
        Raid5Array(self.array, self.layout, n_disks=self.m).format_with(self.data.copy())
        from repro.faults.journal import OnlineJournal

        self.journal = OnlineJournal(spec.groups, rows)
        self.plane = FaultPlane(spec.scenario)
        self.plane.attach(self.array)
        self.conv = OnlineCode56Conversion(
            self.array, p, journal=self.journal, batch=spec.batch
        )
        self.report = OnlineReport()
        self.report.kernel = self.conv.kernel.name if spec.batch > 1 else "per-parity"
        self.requests = self._request_schedule()
        self.health = VolumeHealth()
        self.breaker = CircuitBreaker(spec.qos)
        self.bucket = TokenBucket(spec.bucket_rate, spec.bucket_burst)
        self.scrub = ScrubCursor(self.conv)
        #: truth model: lba -> last applied payload
        self.applied: dict[int, np.ndarray] = {}
        self.crashes = 0
        self.resumes = 0
        self.rebuilds_completed = 0
        self.spare_denied = 0
        self.finish_tick = 0.0
        self.error: str | None = None
        # rebuild staging state (active while a data-disk rebuild runs)
        self._rebuild_disk: int | None = None
        self._staged: np.ndarray | None = None
        self._stage_cursor = 0
        self._dirty: set[int] = set()

    # ------------------------------------------------------------- schedule
    def _request_schedule(self) -> list:
        """Seeded write-heavy foreground schedule.

        Inter-arrival draws dominate the worst-case healthy service time
        (~10 ticks for an interrupted degraded write), so the schedule
        is feasible by construction: foreground latency only climbs when
        *background* work crowds it out, which is exactly what the QoS
        breaker arbitrates (an overloaded open-loop client would breach
        any target even with conversion fully paused).
        """
        from repro.migration.online import OnlineRequest

        spec = self.spec
        rng = np.random.default_rng((spec.seed, spec.volume_id, 1))
        reqs = []
        t = 0.0
        for _ in range(spec.n_requests):
            t += float(rng.integers(6, 14))
            is_write = bool(rng.random() < 0.7)
            reqs.append(
                OnlineRequest(
                    time=t,
                    lba=int(rng.integers(spec.capacity_blocks)),
                    is_write=is_write,
                    payload=(
                        rng.integers(0, 256, size=spec.block_size, dtype=np.uint8)
                        if is_write
                        else None
                    ),
                )
            )
        return reqs

    # ------------------------------------------------------------ main loop
    def run(self, spares: SparePool | None = None) -> dict:
        """Drive the volume to a terminal state; returns its result doc."""
        try:
            self.health.transition(VolumeState.MIGRATING, 0.0, "admitted")
            clock = self._drive(spares)
            self.finish_tick = clock
            if self.health.state in (VolumeState.MIGRATING, VolumeState.REBUILDING):
                self.health.transition(VolumeState.COMPLETE, clock, "drained")
            elif self.health.state is VolumeState.DEGRADED:
                # pool exhausted: drained on reconstruct-on-read alone
                self.health.transition(
                    VolumeState.COMPLETE, clock, "drained-degraded"
                )
        except Exception as exc:  # noqa: BLE001 - a volume failure is a result
            self.error = f"{type(exc).__name__}: {exc}"
            if not self.health.terminal:
                self.health.transition(
                    VolumeState.FAILED, self.finish_tick, self.error
                )
        finally:
            self.plane.detach()
        return self.result()

    def _drive(self, spares: SparePool | None) -> float:
        clock = 0.0
        events: list[tuple[float, int, object]] = [
            (r.time, 1, r) for r in self.requests
        ]
        for f in self.spec.failures:
            events.append((f.time, 0, f))
        events.sort(key=lambda e: (e[0], e[1]))
        for _time, _prio, event in events:
            if self.health.terminal:
                break
            clock = self._background_until(event.time, clock)
            stall = max(0.0, clock - event.time)
            clock = max(clock, event.time)
            if isinstance(event, DiskFailureEvent):
                self._on_disk_failure(event.disk, clock, spares)
                continue
            start = clock
            clock = self.conv.serve_request(event, clock, self.report)
            self.report.request_latencies.append(clock - start)
            self.report.request_stalls.append(stall)
            if event.is_write:
                self.applied[event.lba] = np.asarray(event.payload, dtype=np.uint8)
                if (
                    self._rebuild_disk is not None
                    and self._staged is not None
                ):
                    _g, _r, _d, stripe = self.conv.locate(event.lba)
                    if stripe < self._stage_cursor:
                        self._dirty.add(stripe)
            self.breaker.observe(stall + (clock - start), clock)
        if not self.health.terminal:
            clock = self._background_until(float("inf"), clock)
            clock = self._final_scrub(clock)
            self.report.finish_tick = clock
            self.report.parities_generated = self.journal.count()
        return clock

    # ----------------------------------------------------- background work
    def _cost_estimate(self) -> int:
        est = self.spec.p - 1
        failed_data = sum(1 for d in self.array.failed_disks if d < self.m)
        return est + failed_data * (self.m - 2)

    def _background_until(self, deadline: float, clock: float) -> float:
        """Rebuild, then conversion, then idle scrub — up to ``deadline``."""
        while not self.health.terminal:
            if clock >= deadline:
                return clock
            if self._rebuild_disk is not None:
                clock, progressed = self._rebuild_slice(deadline, clock)
                if progressed:
                    continue
                return clock
            if not self.conv.conversion_done:
                clock, progressed = self._convert_slice(deadline, clock)
                if progressed:
                    continue
                return clock
            # conversion drained: scrub the idle slack of this window
            if deadline == float("inf"):
                return clock
            while clock < deadline:
                cost = self.scrub.step()
                if cost == 0 or clock + cost > deadline:
                    break
                clock += cost
            return max(clock, deadline) if deadline != float("inf") else clock
        return clock

    def _convert_slice(self, deadline: float, clock: float) -> tuple[float, bool]:
        """One conversion run (or pause/refill wait); (clock, progressed)."""
        if self.breaker.is_open(clock):
            resume = self.breaker.resume_tick
            assert resume is not None
            if resume >= deadline:
                return clock, False  # paused past this window
            clock = resume
            self._resume_from_watermark("breaker-reopen")
        est = self._cost_estimate()
        delay = self.bucket.delay_until(est, clock)
        if delay > 0.0:
            if clock + delay >= deadline:
                return clock, False  # starved past this window
            clock += delay
        budget = 1
        if self.spec.batch > 1:
            budget = self.spec.batch
            if deadline != float("inf"):
                room = int(np.ceil((deadline - clock) / est))
                budget = max(1, min(budget, room))
            tokens = int(self.bucket.available(clock) // est)
            budget = max(1, min(budget, tokens))
        cost = self._convert_step(budget)
        if cost == 0:
            return clock, False
        self.bucket.spend(cost, clock)
        self.report.conversion_ticks += cost
        return clock + cost, True

    def _convert_step(self, budget: int) -> int:
        """One generate+mark (or run+group-commit) under the crash plane."""
        for _attempt in range(_MAX_CRASH_RESUMES):
            try:
                with self.plane.crashable():
                    if self.spec.batch > 1:
                        cost = self.conv.generate_run_step(self.report, budget=budget)
                        if cost == 0:
                            return 0
                        run = self.conv.in_flight_run
                        assert run is not None
                        self.plane.crash_point(
                            f"pre-mark-run:g{run[0][0]}r{run[0][1]}x{len(run)}"
                        )
                        self.report.runs_committed += 1
                        self.report.max_run = max(self.report.max_run, len(run))
                        self.conv.mark_run_step()
                        return cost
                    pending = self.conv.pending_parity()
                    if pending is None:
                        return 0
                    cost = self.conv.generate_step(self.report)
                    self.plane.crash_point(f"pre-mark:g{pending[0]}r{pending[1]}")
                    self.conv.mark_step()
                    return cost
            except ConversionCrash:
                self.crashes += 1
                self.plane.disarm_crash()
                self._resume_from_watermark("crash-resume")
        raise RuntimeError("conversion crash kept re-firing after resume")

    def _resume_from_watermark(self, reason: str) -> None:
        """Discard the in-memory converter; trust only journal + bytes."""
        self.resumes += 1
        self.conv = self._conv_cls(
            self.array, self.spec.p, journal=self.journal, batch=self.spec.batch
        )
        self.scrub.conv = self.conv

    # -------------------------------------------------------------- rebuild
    def _on_disk_failure(
        self, disk: int, clock: float, spares: SparePool | None
    ) -> None:
        failed_data = {d for d in self.array.failed_disks if d < self.m}
        if disk == self.m:
            # the hot-added diagonal disk died: its parities are gone.
            # With a spare: swap it in and let journal re-validation drop
            # every stale mark — the conversion regenerates from scratch,
            # nothing on the old disks was touched (the paper's restart).
            if failed_data:
                self.array.fail_disk(disk)
                self.health.transition(
                    VolumeState.FAILED, clock, "diagonal-disk-lost-while-degraded"
                )
                return
            self.health.transition(VolumeState.DEGRADED, clock, "diagonal-disk-lost")
            if spares is None or not spares.claim():
                self.spare_denied += 1
                self.health.transition(
                    VolumeState.FAILED, clock, "diagonal-disk-lost-no-spare"
                )
                return
            self.health.transition(VolumeState.REBUILDING, clock, "spare-attached")
            self.array.fail_disk(disk)
            self.array.replace_disk(disk)  # zeroed spare
            self._resume_from_watermark("diagonal-spare")  # drops stale marks
            self.rebuilds_completed += 1
            self.health.transition(VolumeState.MIGRATING, clock, "reconverting")
            return
        if failed_data:
            self.array.fail_disk(disk)
            self.health.transition(
                VolumeState.FAILED, clock, f"double-fault:d{sorted(failed_data)[0]}+d{disk}"
            )
            return
        self.array.fail_disk(disk)
        self.report.failures_survived += 1
        was_rebuilding = self.health.state is VolumeState.REBUILDING
        self.health.transition(
            VolumeState.DEGRADED, clock,
            f"data-disk-lost:d{disk}" + ("-mid-rebuild" if was_rebuilding else ""),
        )
        if spares is None or not spares.claim():
            self.spare_denied += 1
            return  # reconstruct-on-read until (if ever) a spare frees up
        self.health.transition(VolumeState.REBUILDING, clock, "spare-attached")
        stripes = self.spec.groups * self.spec.rows
        self._rebuild_disk = disk
        self._staged = np.zeros((stripes, self.spec.block_size), dtype=np.uint8)
        self._stage_cursor = 0
        self._dirty = set()

    def _rebuild_slice(self, deadline: float, clock: float) -> tuple[float, bool]:
        """Stage (interleaved) or commit (atomic) the rebuild; bucket-gated."""
        disk = self._rebuild_disk
        staged = self._staged
        assert disk is not None and staged is not None
        stripes = staged.shape[0]
        per_stripe = self.m - 1  # row reads; the reconstruction XOR is free
        if self._stage_cursor < stripes or self._dirty:
            delay = self.bucket.delay_until(per_stripe, clock)
            if delay > 0.0:
                if clock + delay >= deadline:
                    return clock, False
                clock += delay
            if clock + per_stripe > deadline:
                return clock, False
            stripe = self._dirty.pop() if self._dirty else self._stage_cursor
            acc = np.zeros(self.spec.block_size, dtype=np.uint8)
            for d in range(self.m):
                if d != disk:
                    np.bitwise_xor(acc, self.array.read(d, stripe), out=acc)
            staged[stripe] = acc
            if stripe == self._stage_cursor:
                self._stage_cursor += 1
            self.bucket.spend(per_stripe, clock)
            return clock + per_stripe, True
        # commit: one atomic slice — replace the disk and write the image.
        # Bounded by the stripe count; foreground sees at most this stall.
        commit_cost = stripes
        delay = self.bucket.delay_until(commit_cost, clock)
        if delay > 0.0:
            if clock + delay >= deadline:
                return clock, False
            clock += delay
        self.array.replace_disk(disk)
        for stripe in range(stripes):
            self.array.write(disk, stripe, staged[stripe])
        self.bucket.spend(commit_cost, clock)
        self._rebuild_disk = None
        self._staged = None
        self.rebuilds_completed += 1
        self.health.transition(
            VolumeState.MIGRATING, clock + commit_cost, f"rebuilt:d{disk}"
        )
        # the journal survived; re-validation is a no-op for data-disk
        # rebuilds (diagonal parities were never lost) but keeps the
        # resume path uniform
        self._resume_from_watermark("post-rebuild")
        return clock + commit_cost, True

    # ----------------------------------------------------------- completion
    def _final_scrub(self, clock: float) -> float:
        """One full scrub pass before reporting complete."""
        if self.health.terminal or self.array.failed_disks:
            return clock
        for _ in range(self.scrub.stripes):
            clock += self.scrub.step()
        return clock

    def reference_snapshot(self) -> np.ndarray:
        """The offline-conversion image of the final logical data.

        RAID-5 data placement + horizontal parities + Code 5-6 diagonal
        parities computed analytically over the truth model — exactly
        the bytes an offline conversion of the post-write image
        produces (both parity families are determined by the data).
        """
        spec = self.spec
        rows, m, bs = spec.rows, self.m, spec.block_size
        stripes = spec.groups * rows
        final = self.data.copy()
        for lba, payload in self.applied.items():
            final[lba] = payload
        expect = np.zeros((spec.p, stripes, bs), dtype=np.uint8)
        for lba in range(spec.capacity_blocks):
            stripe, disk = locate_block(self.layout, lba, m)
            expect[disk, stripe] = final[lba]
        for stripe in range(stripes):
            pd = parity_disk(self.layout, stripe, m)
            acc = np.zeros(bs, dtype=np.uint8)
            for d in range(m):
                if d != pd:
                    np.bitwise_xor(acc, expect[d, stripe], out=acc)
            expect[pd, stripe] = acc
        for group in range(spec.groups):
            for row in range(rows):
                acc = np.zeros(bs, dtype=np.uint8)
                for r, c in diagonal_chain_cells(spec.p, row):
                    np.bitwise_xor(acc, expect[c, group * rows + r], out=acc)
                expect[m, group * rows + row] = acc
        return expect

    def divergent_blocks(self) -> int:
        """Blocks differing from the offline-conversion reference.

        Failed (unrebuilt) disks hold stale bytes by design and are
        excluded; every surviving disk must match exactly.
        """
        expect = self.reference_snapshot()
        got = self.array.snapshot()
        diverged = 0
        for disk in range(self.spec.p):
            if disk in self.array.failed_disks:
                continue
            diverged += int(
                np.any(expect[disk] != got[disk], axis=-1).sum()
            )
        return diverged

    def result(self) -> dict:
        """JSON-ready per-volume outcome (the fleet report's unit)."""
        complete = self.health.state is VolumeState.COMPLETE
        verified = False
        divergent = -1
        if complete:
            divergent = self.divergent_blocks()
            verified = (
                bool(self.conv.verify()) if not self.array.failed_disks else False
            )
        lat = [
            s + l
            for s, l in zip(self.report.request_stalls, self.report.request_latencies)
        ]
        arr = np.asarray(lat) if lat else None
        return {
            "volume_id": self.spec.volume_id,
            "tenant": self.spec.tenant,
            "state": self.health.state.value,
            "transitions": self.health.history(),
            "error": self.error,
            "requests_served": len(self.report.request_latencies),
            "writes_applied": len(self.applied),
            "parities_generated": self.journal.count(),
            "conversion_ticks": self.report.conversion_ticks,
            "finish_tick": self.finish_tick,
            "crashes": self.crashes,
            "resumes": self.resumes,
            "rebuilds_completed": self.rebuilds_completed,
            "spare_denied": self.spare_denied,
            "degraded_reads": self.report.degraded_reads,
            "failures_survived": self.report.failures_survived,
            "batch": self.spec.batch,
            "kernel": self.report.kernel,
            "verified": verified,
            "divergent_blocks": divergent,
            "latency": {
                "samples": len(lat),
                "ticks": [float(x) for x in lat],
                "p50": float(np.percentile(arr, 50)) if arr is not None else 0.0,
                "p95": float(np.percentile(arr, 95)) if arr is not None else 0.0,
                "p99": float(np.percentile(arr, 99)) if arr is not None else 0.0,
            },
            "breaker": self.breaker.snapshot(),
            "scrub": self.scrub.snapshot(),
            "qos_p99_ticks": self.spec.qos.p99_ticks,
            "fault_counters": {k: v for k, v in self.plane.counters.items() if v},
        }
