"""Self-healing migration fleet: many volumes, one service.

``repro.fleet`` layers a long-running multi-volume migration service on
top of the batched online converter: per-volume health state machines
(:mod:`~repro.fleet.health`), hot-spare arbitration and idle-slack
scrubbing (:mod:`~repro.fleet.spares`), token-bucket + circuit-breaker
QoS arbitration between foreground I/O and background conversion
(:mod:`~repro.fleet.qos`), the per-volume cooperative driver
(:mod:`~repro.fleet.volume`) and the thread-pool service with its gated
fleet report (:mod:`~repro.fleet.service`).

Heavy submodules load lazily so ``import repro.fleet`` stays cheap for
callers that only want the spec types.
"""

from __future__ import annotations

__all__ = [
    "VolumeState",
    "HealthTransition",
    "VolumeHealth",
    "QosTarget",
    "TokenBucket",
    "CircuitBreaker",
    "SparePool",
    "ScrubCursor",
    "VolumeSpec",
    "FleetVolume",
    "FleetConfig",
    "FleetService",
    "run_fleet",
    "fleet_soak",
]

_LAZY = {
    "VolumeState": "repro.fleet.health",
    "HealthTransition": "repro.fleet.health",
    "VolumeHealth": "repro.fleet.health",
    "QosTarget": "repro.fleet.qos",
    "TokenBucket": "repro.fleet.qos",
    "CircuitBreaker": "repro.fleet.qos",
    "SparePool": "repro.fleet.spares",
    "ScrubCursor": "repro.fleet.spares",
    "VolumeSpec": "repro.fleet.volume",
    "FleetVolume": "repro.fleet.volume",
    "FleetConfig": "repro.fleet.service",
    "FleetService": "repro.fleet.service",
    "run_fleet": "repro.fleet.service",
    "fleet_soak": "repro.fleet.service",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.fleet' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value
    return value
