"""The migration fleet service: admission, spares, and the merged report.

:class:`FleetService` turns a :class:`FleetConfig` into a fleet of
:class:`~repro.fleet.volume.FleetVolume` tasks backed by one shared
byte segment (each volume's :class:`~repro.raid.array.BlockArray` is a
zero-copy view into it, the thread-pool analogue of an shm-backed
store), admits at most ``clients`` of them concurrently through a
worker pool, arbitrates hot spares through the shared
:class:`~repro.fleet.spares.SparePool`, and merges the per-volume
results into one JSON-ready fleet report with explicit pass/fail gates:

* ``all_terminal`` — every volume reached a terminal health state;
* ``zero_divergence`` — every completed volume's surviving disks match
  the offline-conversion image of its final logical data byte-for-byte;
* ``qos_ok`` — no volume's foreground p99, measured over samples taken
  while its circuit breaker was closed, exceeded its tenant's target;
* ``no_errors`` — no volume died on an unexpected exception.

Because volumes share nothing but the spare pool, the merged report is
deterministic for a given config whenever the pool is sized for the
fault scenario (every claim granted) — which is exactly what the seeded
soak (:func:`fleet_soak`) asserts, config attached, whenever a gate
fails.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace

import numpy as np

from repro.faults.events import DiskFailureEvent
from repro.faults.spec import FaultScenario
from repro.fleet.qos import QosTarget
from repro.fleet.spares import SparePool
from repro.fleet.volume import FleetVolume, VolumeSpec

__all__ = ["FleetConfig", "FleetService", "run_fleet", "fleet_soak"]

#: tenant ring: (name, foreground p99 ceiling in ticks) — volumes are
#: assigned round-robin, so every fleet exercises every QoS class
DEFAULT_TENANTS: tuple[tuple[str, float], ...] = (
    ("gold", 40.0),
    ("silver", 60.0),
    ("bronze", 90.0),
)


@dataclass(frozen=True)
class FleetConfig:
    """Deterministic recipe for one fleet run."""

    volumes: int = 8
    #: worker-pool width = how many volumes migrate concurrently
    clients: int = 4
    p: int = 5
    groups: int = 2
    block_size: int = 8
    seed: int = 0
    requests_per_volume: int = 12
    batch: int = 1
    spares: int = 2
    #: volume ids that lose a disk mid-migration
    fail_volumes: tuple[int, ...] = ()
    #: disk to fail (None = seeded per-volume choice over all p disks,
    #: diagonal disk included)
    fail_disk: int | None = None
    #: plane-level transient rate applied to every volume
    transient_rate: float = 0.0
    #: volume ids whose conversion crashes once (seeded crash point)
    crash_volumes: tuple[int, ...] = ()
    tenants: tuple[tuple[str, float], ...] = DEFAULT_TENANTS
    bucket_rate: float = 1.0
    bucket_burst: float = 32.0

    def to_dict(self) -> dict:
        return {
            "volumes": self.volumes,
            "clients": self.clients,
            "p": self.p,
            "groups": self.groups,
            "block_size": self.block_size,
            "seed": self.seed,
            "requests_per_volume": self.requests_per_volume,
            "batch": self.batch,
            "spares": self.spares,
            "fail_volumes": list(self.fail_volumes),
            "fail_disk": self.fail_disk,
            "transient_rate": self.transient_rate,
            "crash_volumes": list(self.crash_volumes),
            "tenants": [list(t) for t in self.tenants],
            "bucket_rate": self.bucket_rate,
            "bucket_burst": self.bucket_burst,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "FleetConfig":
        kwargs = dict(doc)
        kwargs["fail_volumes"] = tuple(kwargs.get("fail_volumes", ()))
        kwargs["crash_volumes"] = tuple(kwargs.get("crash_volumes", ()))
        kwargs["tenants"] = tuple(
            (str(n), float(q)) for n, q in kwargs.get("tenants", DEFAULT_TENANTS)
        )
        return cls(**kwargs)


class FleetService:
    """Runs one fleet config to completion and merges the report."""

    def __init__(self, config: FleetConfig):
        self.config = config
        self.spares = SparePool(config.spares)

    # ------------------------------------------------------------- planning
    def build_specs(self) -> list[VolumeSpec]:
        cfg = self.config
        specs = []
        for i in range(cfg.volumes):
            tenant, p99 = cfg.tenants[i % len(cfg.tenants)]
            failures: tuple[DiskFailureEvent, ...] = ()
            if i in cfg.fail_volumes:
                rng = np.random.default_rng((cfg.seed, i, 2))
                disk = (
                    cfg.fail_disk
                    if cfg.fail_disk is not None
                    else int(rng.integers(cfg.p))
                )
                failures = (
                    DiskFailureEvent(time=float(rng.integers(5, 30)), disk=disk),
                )
            scenario = FaultScenario(
                seed=cfg.seed * 1000 + i, transient_rate=cfg.transient_rate
            )
            if i in cfg.crash_volumes:
                rng = np.random.default_rng((cfg.seed, i, 3))
                scenario = scenario.with_crash(int(rng.integers(1, 8)))
            specs.append(
                VolumeSpec(
                    volume_id=i,
                    p=cfg.p,
                    groups=cfg.groups,
                    block_size=cfg.block_size,
                    seed=cfg.seed,
                    tenant=tenant,
                    n_requests=cfg.requests_per_volume,
                    batch=cfg.batch,
                    qos=QosTarget(p99_ticks=p99),
                    bucket_rate=cfg.bucket_rate,
                    bucket_burst=cfg.bucket_burst,
                    failures=failures,
                    scenario=scenario,
                )
            )
        return specs

    # ------------------------------------------------------------ execution
    def run(self) -> dict:
        cfg = self.config
        specs = self.build_specs()
        stripes = cfg.groups * (cfg.p - 1)
        # one shared segment for the whole fleet; every volume's array is
        # a zero-copy view (what an shm-backed deployment hands workers)
        segment = np.zeros(
            (cfg.volumes, cfg.p, stripes, cfg.block_size), dtype=np.uint8
        )
        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=cfg.clients) as pool:
            futures = [
                pool.submit(FleetVolume(spec, buffer=segment[spec.volume_id]).run,
                            self.spares)
                for spec in specs
            ]
            results = [f.result() for f in futures]
        elapsed = time.perf_counter() - started
        results.sort(key=lambda r: r["volume_id"])
        return self._merge(results, elapsed)

    # ------------------------------------------------------------ reporting
    def _merge(self, results: list[dict], elapsed: float) -> dict:
        states: dict[str, int] = {}
        tenants: dict[str, dict] = {}
        divergent = 0
        qos_violations = []
        errors = []
        for r in results:
            states[r["state"]] = states.get(r["state"], 0) + 1
            t = tenants.setdefault(
                r["tenant"],
                {"volumes": 0, "worst_closed_p99": 0.0, "p99_target": r["qos_p99_ticks"]},
            )
            t["volumes"] += 1
            closed_p99 = r["breaker"]["closed_p99"]
            t["worst_closed_p99"] = max(t["worst_closed_p99"], closed_p99)
            if r["qos_p99_ticks"] is not None and closed_p99 > r["qos_p99_ticks"]:
                qos_violations.append(
                    {"volume_id": r["volume_id"], "tenant": r["tenant"],
                     "closed_p99": closed_p99, "target": r["qos_p99_ticks"]}
                )
            if r["state"] == "complete":
                divergent += max(0, r["divergent_blocks"])
            if r["error"] is not None:
                errors.append({"volume_id": r["volume_id"], "error": r["error"]})
        complete = states.get("complete", 0)
        gates = {
            "all_terminal": all(r["state"] in ("complete", "failed") for r in results),
            "zero_divergence": divergent == 0,
            "qos_ok": not qos_violations,
            "no_errors": not errors,
        }
        return {
            "config": self.config.to_dict(),
            "elapsed_seconds": elapsed,
            "gates": gates,
            "ok": all(gates.values()),
            "volumes_total": len(results),
            "volumes_complete": complete,
            "states": states,
            "tenants": tenants,
            "divergent_blocks": divergent,
            "qos_violations": qos_violations,
            "errors": errors,
            "breaker_trips": sum(r["breaker"]["trips"] for r in results),
            "breaker_open_ticks": sum(r["breaker"]["open_ticks"] for r in results),
            "rebuilds_completed": sum(r["rebuilds_completed"] for r in results),
            "crashes": sum(r["crashes"] for r in results),
            "resumes": sum(r["resumes"] for r in results),
            "degraded_reads": sum(r["degraded_reads"] for r in results),
            "stripes_scrubbed": sum(r["scrub"]["stripes_scrubbed"] for r in results),
            "scrub_errors": sum(r["scrub"]["errors_found"] for r in results),
            "spares": self.spares.snapshot(),
            "volumes": results,
        }


def run_fleet(config: FleetConfig | None = None, **overrides) -> dict:
    """Run one fleet to completion; convenience wrapper over the service."""
    cfg = config or FleetConfig()
    if overrides:
        cfg = replace(cfg, **overrides)
    return FleetService(cfg).run()


def fleet_soak(
    seconds: float = 10.0,
    seed: int = 0,
    max_iterations: int | None = None,
) -> dict:
    """Chaos-mode soak: randomized fleets until the clock runs out.

    Every iteration draws a fleet config from a seeded rng — volume
    count, admission width, spare-pool size, injected disk failures
    (diagonal disk included), transient rates, crash points, batch
    tier — runs it, and scores the gates.  ``qos_ok`` is only scored
    when no fault injection ran (a pool-exhausted degraded volume is
    *supposed* to be slow); the byte gates are unconditional.  Failures
    carry the full config dict, so any soak hit replays exactly with
    ``run_fleet(FleetConfig.from_dict(cfg))``.
    """
    deadline = time.monotonic() + seconds
    iterations = 0
    failures: list[dict] = []
    totals = {
        "volumes": 0, "complete": 0, "rebuilds": 0, "breaker_trips": 0,
        "crashes": 0, "divergent_blocks": 0, "scrub_errors": 0,
    }
    while time.monotonic() < deadline:
        if max_iterations is not None and iterations >= max_iterations:
            break
        rng = np.random.default_rng((seed, iterations))
        volumes = int(rng.integers(4, 9))
        n_fail = int(rng.integers(0, 3))
        cfg = FleetConfig(
            volumes=volumes,
            clients=int(rng.integers(2, 5)),
            groups=int(rng.integers(2, 4)),
            seed=seed * 10_000 + iterations,
            requests_per_volume=int(rng.integers(8, 25)),
            batch=int(rng.choice((1, 4))),
            spares=int(rng.integers(0, 4)),
            fail_volumes=tuple(
                int(v) for v in rng.choice(volumes, size=n_fail, replace=False)
            ),
            transient_rate=float(rng.choice((0.0, 0.0, 0.02))),
            crash_volumes=tuple(
                int(v) for v in rng.choice(volumes, size=int(rng.integers(0, 2)),
                                           replace=False)
            ),
        )
        report = run_fleet(cfg)
        injected = bool(cfg.fail_volumes or cfg.crash_volumes or cfg.transient_rate)
        gates = dict(report["gates"])
        if injected:
            gates.pop("qos_ok")
        ok = all(gates.values())
        iterations += 1
        totals["volumes"] += report["volumes_total"]
        totals["complete"] += report["volumes_complete"]
        totals["rebuilds"] += report["rebuilds_completed"]
        totals["breaker_trips"] += report["breaker_trips"]
        totals["crashes"] += report["crashes"]
        totals["divergent_blocks"] += report["divergent_blocks"]
        totals["scrub_errors"] += report["scrub_errors"]
        if not ok:
            failures.append(
                {
                    "iteration": iterations - 1,
                    "config": cfg.to_dict(),
                    "gates": report["gates"],
                    "qos_violations": report["qos_violations"],
                    "errors": report["errors"],
                    "divergent_blocks": report["divergent_blocks"],
                }
            )
    return {
        "seed": seed,
        "seconds": seconds,
        "iterations": iterations,
        "totals": totals,
        "failures": failures,
        "ok": not failures,
    }
