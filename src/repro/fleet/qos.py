"""QoS arbitration: token-bucket rate limiting + a latency circuit breaker.

Foreground I/O competes with conversion/rebuild bandwidth inside each
volume's tick-domain schedule.  Two mechanisms arbitrate:

* :class:`TokenBucket` — background work (conversion runs, rebuild
  sweeps) spends tokens; tokens refill at ``rate`` per tick up to
  ``burst``.  An empty bucket stalls the *background* thread only — the
  foreground path is never throttled.
* :class:`CircuitBreaker` — a sliding window over foreground latencies
  (stall + service, the number :func:`repro.obs.record.
  record_online_report` histograms).  When the windowed p50/p95/p99
  breaches the tenant's :class:`QosTarget` the breaker trips: conversion
  pauses, backing off on the shared :class:`repro.util.retry.Backoff`
  curve (bounded exponential), and resumes from the journal watermark.
  Consecutive breaches escalate the backoff; a clean re-probe resets it.

Both are pure tick-domain objects — deterministic, clockless, owned by
one volume's cooperative schedule (no cross-thread state).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.retry import Backoff, BackoffPolicy

__all__ = ["QosTarget", "TokenBucket", "CircuitBreaker", "DEFAULT_BREAKER_POLICY"]


#: breaker pause curve: 32..256-tick pauses, at most ~1.5k ticks of
#: cumulative pause per incident before the breaker just stays open
#: until the foreground pressure passes
DEFAULT_BREAKER_POLICY = BackoffPolicy(
    base_ticks=32.0, multiplier=2.0, max_attempts=6, cap_ticks=256.0
)


@dataclass(frozen=True)
class QosTarget:
    """Per-tenant foreground-latency ceilings, in Te ticks.

    A ``None`` quantile is unconstrained.  Defaults are generous for the
    healthy p=5 geometry (worst healthy foreground latency is around 10
    ticks: a bounded sub-parity stall plus a 6-tick RMW); degraded-mode
    service inflates toward ``3x`` — tighter targets make the breaker
    trip under degradation, which is exactly the intended behaviour.
    """

    p50_ticks: float | None = None
    p95_ticks: float | None = None
    p99_ticks: float | None = 60.0

    def breached_by(self, p50: float, p95: float, p99: float) -> str | None:
        """Name of the first breached quantile, or None."""
        for name, value, limit in (
            ("p50", p50, self.p50_ticks),
            ("p95", p95, self.p95_ticks),
            ("p99", p99, self.p99_ticks),
        ):
            if limit is not None and value > limit:
                return name
        return None


class TokenBucket:
    """Deterministic tick-domain token bucket for background bandwidth.

    ``rate`` tokens accrue per tick (fractional rates are exact — the
    bucket integrates ``rate * dt`` in floats), capped at ``burst``.
    Background work calls :meth:`delay_until` to learn when it may spend
    ``cost`` tokens, advances its clock there, then :meth:`spend`\\ s.
    """

    __slots__ = ("rate", "burst", "_tokens", "_tick")

    def __init__(self, rate: float, burst: float):
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._tick = 0.0

    def _advance(self, tick: float) -> None:
        if tick > self._tick:
            self._tokens = min(self.burst, self._tokens + (tick - self._tick) * self.rate)
            self._tick = tick

    def available(self, tick: float) -> float:
        self._advance(tick)
        return self._tokens

    def delay_until(self, cost: float, tick: float) -> float:
        """Ticks to wait (possibly 0) before ``cost`` tokens are available.

        A cost above ``burst`` is granted at the burst waterline — one
        oversized rebuild sweep must not deadlock the bucket.
        """
        self._advance(tick)
        need = min(float(cost), self.burst)
        if self._tokens >= need:
            return 0.0
        return (need - self._tokens) / self.rate

    def spend(self, cost: float, tick: float) -> None:
        self._advance(tick)
        self._tokens = max(0.0, self._tokens - float(cost))


class CircuitBreaker:
    """Latency circuit breaker over one tenant's foreground stream.

    States: **closed** (conversion admitted) → **open** (paused until
    ``resume_tick``) → half-open probe (first window after resume); a
    breach while half-open escalates the backoff, a clean window closes
    it fully and resets the curve.
    """

    __slots__ = (
        "target", "window", "min_samples", "_backoff", "_lat",
        "_open_until", "trips", "open_ticks", "closed_latencies",
        "open_latencies", "breaches",
    )

    def __init__(
        self,
        target: QosTarget,
        policy: BackoffPolicy = DEFAULT_BREAKER_POLICY,
        window: int = 32,
        min_samples: int = 8,
    ):
        self.target = target
        self.window = int(window)
        self.min_samples = int(min_samples)
        self._backoff = Backoff(policy)
        self._lat: list[float] = []
        self._open_until: float | None = None
        self.trips = 0
        self.open_ticks = 0.0
        self.breaches: list[str] = []
        #: foreground latencies split by breaker state at observation
        #: time — the acceptance gate reads the closed-state percentiles
        self.closed_latencies: list[float] = []
        self.open_latencies: list[float] = []

    # ------------------------------------------------------------- queries
    def is_open(self, tick: float) -> bool:
        return self._open_until is not None and tick < self._open_until

    @property
    def resume_tick(self) -> float | None:
        """When the current pause ends (None while closed)."""
        return self._open_until

    def percentile(self, q: float) -> float:
        if not self._lat:
            return 0.0
        return float(np.percentile(np.asarray(self._lat), q))

    # ------------------------------------------------------------- updates
    def observe(self, latency: float, tick: float) -> bool:
        """Record one foreground latency; returns True when this trips.

        The sample is attributed to the breaker state *at observation*:
        a sample that trips the breaker was necessarily observed while
        closed (that is the window the QoS gate scores).
        """
        if self.is_open(tick):
            self.open_latencies.append(float(latency))
            return False
        self.closed_latencies.append(float(latency))
        self._lat.append(float(latency))
        if len(self._lat) > self.window:
            del self._lat[: len(self._lat) - self.window]
        if len(self._lat) < self.min_samples:
            return False
        breach = self.target.breached_by(
            self.percentile(50), self.percentile(95), self.percentile(99)
        )
        if breach is None:
            if self._open_until is not None and tick >= self._open_until:
                # clean sample after the pause: close fully, reset curve
                self._open_until = None
                self._backoff.reset()
            return False
        return self._trip(breach, tick)

    def _trip(self, breach: str, tick: float) -> bool:
        delay = self._backoff.next_delay()
        if delay is None:
            # curve exhausted: stay open for the cap's worth again —
            # bounded per incident, but never a tight trip/re-trip loop
            delay = self._backoff.policy.delay(self._backoff.policy.max_attempts - 1)
        self.trips += 1
        self.breaches.append(breach)
        self.open_ticks += delay
        self._open_until = tick + delay
        self._lat.clear()  # the paused window must re-prove itself
        return True

    # ------------------------------------------------------------ reporting
    def snapshot(self) -> dict:
        closed = np.asarray(self.closed_latencies) if self.closed_latencies else None
        return {
            "trips": self.trips,
            "open_ticks": self.open_ticks,
            "breaches": list(self.breaches),
            "closed_samples": len(self.closed_latencies),
            "open_samples": len(self.open_latencies),
            "closed_p50": float(np.percentile(closed, 50)) if closed is not None else 0.0,
            "closed_p95": float(np.percentile(closed, 95)) if closed is not None else 0.0,
            "closed_p99": float(np.percentile(closed, 99)) if closed is not None else 0.0,
        }
