"""Hot-spare pool and scrub scheduling for the fleet.

The :class:`SparePool` is the only piece of fleet state shared between
volume workers, so it is the one place that takes a lock.  A volume that
loses a data disk asks for a spare; if one is granted the volume rebuilds
onto it (row-XOR reconstruction through the still-maintained RAID-5
horizontal parity — valid mid-migration, because Algorithm 2's write
path updates that parity on every write) and returns to migrating.
Pool-exhausted volumes stay degraded and keep converting through
reconstruct-on-read.

:class:`ScrubCursor` is the idle-slack parity verifier: one stripe per
step — the horizontal row XOR plus, when the diagonal parity of that
stripe's row is journal-marked, its Code 5-6 chain XOR.  The fleet
scheduler feeds it whatever ticks are left between request arrivals once
conversion has drained, so silent corruption surfaces while the volume
is still under management instead of at the next full audit.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.codes.code56 import diagonal_chain_cells

__all__ = ["SparePool", "ScrubCursor"]


class SparePool:
    """A counted pool of hot spares shared by every volume worker.

    Grant order is first-come-first-served under a lock; the *outcome*
    per volume is deterministic whenever the pool is sized for the fault
    scenario (every claim granted), which is what seeded soaks assert.
    """

    def __init__(self, spares: int):
        if spares < 0:
            raise ValueError("spare count must be non-negative")
        self._lock = threading.Lock()
        self._free = int(spares)
        self.total = int(spares)
        self.granted = 0
        self.denied = 0

    def claim(self) -> bool:
        """Take one spare; False when the pool is exhausted."""
        with self._lock:
            if self._free == 0:
                self.denied += 1
                return False
            self._free -= 1
            self.granted += 1
            return True

    @property
    def free(self) -> int:
        with self._lock:
            return self._free

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "total": self.total,
                "free": self._free,
                "granted": self.granted,
                "denied": self.denied,
            }


class ScrubCursor:
    """Round-robin background parity verification over one volume.

    Each :meth:`step` checks one stripe out-of-band (raw reads — scrub
    is the recovery plane's scan, not counted array traffic) and costs
    the caller ``m`` ticks of idle slack, the stripe-read budget a real
    scrubber would spend.
    """

    def __init__(self, conv) -> None:
        self.conv = conv
        self._stripe = 0
        self.stripes_scrubbed = 0
        self.errors_found = 0
        #: (stripe, kind) of every inconsistency seen
        self.errors: list[tuple[int, str]] = []

    @property
    def stripes(self) -> int:
        return self.conv.groups * self.conv.rows

    def step(self) -> int:
        """Scrub the next stripe; returns the tick cost (0 if no stripes)."""
        total = self.stripes
        if total == 0:
            return 0
        conv = self.conv
        array, m = conv.array, conv.m
        stripe = self._stripe
        self._stripe = (stripe + 1) % total
        self.stripes_scrubbed += 1
        failed = array.failed_disks
        cost = m
        # horizontal parity: XOR over the RAID-5 row must balance —
        # skipped while a row member is failed (its raw bytes are stale
        # by design; the row is checked again once rebuilt)
        if not any(d < m for d in failed):
            acc = np.zeros(array.block_size, dtype=np.uint8)
            for d in range(m):
                np.bitwise_xor(acc, array.raw(d, stripe), out=acc)
            if acc.any():
                self.errors_found += 1
                self.errors.append((stripe, "horizontal"))
        # diagonal parity of this stripe's row, once journal-marked
        group, row = divmod(stripe, conv.rows)
        journal = conv.journal
        if (
            journal is not None
            and journal.is_marked(group, row)
            and m not in failed
            and not any(d < m for d in failed)
        ):
            acc = np.zeros(array.block_size, dtype=np.uint8)
            for r, c in diagonal_chain_cells(conv.p, row):
                np.bitwise_xor(acc, array.raw(c, group * conv.rows + r), out=acc)
            cost += 1
            if not np.array_equal(acc, array.raw(m, stripe)):
                self.errors_found += 1
                self.errors.append((stripe, "diagonal"))
        return cost

    def snapshot(self) -> dict:
        return {
            "stripes_scrubbed": self.stripes_scrubbed,
            "errors_found": self.errors_found,
            "errors": [list(e) for e in self.errors],
        }
