"""Volume health state machine for the migration fleet.

Every fleet volume carries an explicit :class:`VolumeState`; transitions
are driven by the fault plane (disk failures), the spare pool (attach /
rebuild) and the journal watermark (conversion progress).  The machine
enforces legality — an illegal transition is a fleet bug, surfaced
immediately rather than laundered into a bad report — and keeps a
tick-stamped transition log so a soak failure reads as a timeline.

::

                 admit                drain
    PENDING ──> MIGRATING ───────────────────────> COMPLETE
                   │  ▲                              ▲
         disk loss │  │ rebuilt (spare)              │
                   ▼  │                              │
                DEGRADED ──> REBUILDING ─────────────┘
                   │   spare attach      (drain while healthy again)
                   │ diagonal-disk loss, double fault
                   ▼
                 FAILED

``DEGRADED`` volumes keep migrating (reconstruct-on-read); ``FAILED`` is
terminal.  A degraded volume that never gets a spare may still drain —
it completes in ``DEGRADED`` state with its surviving bytes verified.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

__all__ = ["VolumeState", "HealthTransition", "VolumeHealth"]


class VolumeState(Enum):
    """Lifecycle states of one fleet volume."""

    PENDING = "pending"  # queued behind admission control
    MIGRATING = "migrating"  # conversion in progress, array healthy
    DEGRADED = "degraded"  # a data disk failed; reconstruct-on-read
    REBUILDING = "rebuilding"  # spare attached, row-XOR rebuild running
    COMPLETE = "complete"  # conversion drained and verified
    FAILED = "failed"  # unrecoverable (diagonal disk / double fault)


#: legal edges of the machine (see the module diagram)
_LEGAL: dict[VolumeState, frozenset[VolumeState]] = {
    VolumeState.PENDING: frozenset({VolumeState.MIGRATING, VolumeState.FAILED}),
    VolumeState.MIGRATING: frozenset(
        {VolumeState.DEGRADED, VolumeState.COMPLETE, VolumeState.FAILED}
    ),
    VolumeState.DEGRADED: frozenset(
        {VolumeState.REBUILDING, VolumeState.COMPLETE, VolumeState.FAILED}
    ),
    VolumeState.REBUILDING: frozenset(
        {VolumeState.MIGRATING, VolumeState.DEGRADED, VolumeState.FAILED}
    ),
    VolumeState.COMPLETE: frozenset(),
    VolumeState.FAILED: frozenset(),
}


@dataclass(frozen=True)
class HealthTransition:
    """One tick-stamped edge of a volume's health history."""

    tick: float
    src: VolumeState
    dst: VolumeState
    reason: str


@dataclass
class VolumeHealth:
    """State + transition log of one volume."""

    state: VolumeState = VolumeState.PENDING
    log: list[HealthTransition] = field(default_factory=list)

    def transition(self, dst: VolumeState, tick: float, reason: str) -> None:
        """Take one edge; raises ``ValueError`` on an illegal transition."""
        if dst not in _LEGAL[self.state]:
            raise ValueError(
                f"illegal health transition {self.state.value} -> {dst.value} "
                f"({reason!r} at tick {tick})"
            )
        self.log.append(HealthTransition(tick, self.state, dst, reason))
        self.state = dst

    @property
    def terminal(self) -> bool:
        return not _LEGAL[self.state]

    def history(self) -> list[dict]:
        """JSON-ready transition log (the soak report's timeline)."""
        return [
            {
                "tick": t.tick,
                "from": t.src.value,
                "to": t.dst.value,
                "reason": t.reason,
            }
            for t in self.log
        ]
