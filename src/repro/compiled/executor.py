"""Execute compiled conversion programs against a :class:`BlockArray`.

The executor replays a :class:`CompiledPlan` phase by phase through the
array's counted bulk-I/O API — migrations become one gather plus one
scatter, NULL invalidations one zero-scatter, stripe assembly two
gathers into a ``(batch, rows, cols, block)`` tensor, parity generation
one batched :meth:`ArrayCode.encode`, and the parity landing one counted
scatter.  The result is byte-identical to the audited engine with
identical per-disk counters (tested for every supported conversion);
only the Python overhead disappears.
"""

from __future__ import annotations

import numpy as np

from repro.compiled.compiler import compile_plan
from repro.compiled.program import CompiledPlan, PhaseProgram
from repro.migration.engine import ConversionResult
from repro.migration.plan import ConversionPlan
from repro.obs.tracer import get_tracer
from repro.raid.array import BlockArray

__all__ = ["execute_compiled", "execute_plan_compiled"]


def _run_phase(program: CompiledPlan, ph: PhaseProgram, array: BlockArray) -> None:
    code = program.code
    # 1. migrations: bulk read → bulk write (counted, queue order)
    if ph.migrate_src_disk.size:
        payload = array.read_blocks(ph.migrate_src_disk, ph.migrate_src_block)
        array.write_blocks(ph.migrate_dst_disk, ph.migrate_dst_block, payload)
    # 2. NULL invalidation writes
    if ph.null_disk.size:
        array.write_zero_blocks(ph.null_disk, ph.null_block)
    # 3. metadata trims (uncounted)
    if ph.trim_disk.size:
        array.trim_blocks(ph.trim_disk, ph.trim_block)
    if ph.batch == 0:
        return  # pure degrade phase: nothing to generate
    # 4. assemble the batched stripe tensor
    stripes = np.zeros(
        (ph.batch, code.rows, code.cols, array.block_size), dtype=np.uint8
    )
    flat = stripes.reshape(-1, array.block_size)
    if ph.read_disk.size:
        flat[ph.read_cell] = array.read_blocks(ph.read_disk, ph.read_block)
    if ph.fill_disk.size:
        flat[ph.fill_cell] = array.gather_raw(ph.fill_disk, ph.fill_block)
    # 5. one batched encode for every group of the phase
    code.encode(stripes)
    # 6. scatter the generated parities
    if ph.parity_disk.size:
        array.write_blocks(ph.parity_disk, ph.parity_block, flat[ph.parity_cell])
    # 7. audit reused parities against the recomputed values (engine step 7)
    if ph.check_disk.size:
        actual = array.gather_raw(ph.check_disk, ph.check_block)
        if not np.array_equal(flat[ph.check_cell], actual):
            bad = np.flatnonzero((flat[ph.check_cell] != actual).any(axis=1))
            raise AssertionError(
                f"pre-existing parity at {bad.size} location(s) of phase "
                f"{ph.phase} does not match the recomputed value — old "
                "parity was not valid"
            )


def execute_compiled(program: CompiledPlan, array: BlockArray) -> None:
    """Run every phase of ``program`` on ``array`` (counters accumulate)."""
    if (array.n_disks, array.blocks_per_disk) != (program.n_disks, program.blocks_per_disk):
        raise ValueError(
            f"array geometry {(array.n_disks, array.blocks_per_disk)} does not "
            f"match program {(program.n_disks, program.blocks_per_disk)}"
        )
    tracer = get_tracer()
    for ph in program.phases:
        with tracer.span(
            f"phase{ph.phase}", cat="compiled.phase", phase=ph.phase, batch=ph.batch,
            migrates=int(ph.migrate_src_disk.size), nulls=int(ph.null_disk.size),
            parities=int(ph.parity_disk.size),
        ):
            _run_phase(program, ph, array)


def execute_plan_compiled(
    plan: ConversionPlan,
    array: BlockArray,
    data: np.ndarray,
    program: CompiledPlan | None = None,
) -> ConversionResult:
    """Drop-in replacement for :func:`repro.migration.execute_plan`.

    Compiles ``plan`` (cached across calls) and executes it in bulk;
    raises :class:`~repro.compiled.compiler.UnsupportedPlanError` when
    the plan cannot be batched faithfully — fall back to the audited
    engine in that case.
    """
    tracer = get_tracer()
    if program is None:
        with tracer.span(
            "compile", cat="compiled", code=plan.code.name, approach=plan.approach,
            groups=plan.groups,
        ):
            program = compile_plan(plan)
    array.reset_counters()
    with tracer.span(
        "execute", cat="compiled", engine="compiled", code=plan.code.name,
        approach=plan.approach, groups=plan.groups,
    ):
        execute_compiled(program, array)
    return ConversionResult(
        array=array,
        plan=plan,
        data=data,
        measured_reads=array.total_reads,
        measured_writes=array.total_writes,
    )
