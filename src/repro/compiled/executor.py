"""Execute compiled conversion programs against a :class:`BlockArray`.

The executor replays a :class:`CompiledPlan` phase by phase through the
array's counted bulk-I/O API.  Parity work runs on one of two paths:

* **fused** (default when available): the phase's
  :class:`~repro.compiled.program.FusedPhase` region ops XOR strided
  views of the block store directly into a reused scratch buffer through
  the selected :class:`~repro.kernels.base.XorKernel` backend — no
  stripe tensor, no gather-copy-scatter round trip.  Counted reads are
  credited via :meth:`BlockArray.credit_ios` (the views bypass the
  counted gather); parity writes stay on the counted
  :meth:`BlockArray.write_blocks`.
* **stripe tensor** (fallback): two gathers into a ``(batch, rows, cols,
  block)`` tensor, one batched :meth:`ArrayCode.encode`, one counted
  scatter.  Used when a phase was not lowered, when a fault plane is
  attached or disks have failed (fault hooks and degraded reads fire on
  the counted entry points the fused path bypasses), or when the caller
  forces it (``use_fused=False``, e.g. for benchmarking the baseline).

Both paths are byte-identical to the audited engine with identical
per-disk counters (tested for every supported conversion); only the
Python and memory-traffic overhead differs.
"""

from __future__ import annotations

import numpy as np

from repro.compiled.compiler import compile_plan
from repro.compiled.program import CompiledPlan, FusedPhase, PhaseProgram
from repro.kernels import XorKernel, resolve_kernel
from repro.migration.engine import ConversionResult
from repro.migration.plan import ConversionPlan
from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer
from repro.raid.array import BlockArray

__all__ = ["execute_compiled", "execute_plan_compiled"]


class _ScratchPool:
    """Grow-only scratch backing for phase buffers.

    One flat uint8 allocation is reused for every phase's stripe tensor
    or fused output region (and across executor calls within a process),
    eliminating the per-phase large-allocation churn.  ``take`` returns
    a shaped view of the pool — callers must be done with the previous
    view before taking the next (phases are sequential, so they are).
    """

    def __init__(self) -> None:
        self._buf = np.empty(0, dtype=np.uint8)

    def reserve(self, nbytes: int) -> None:
        if self._buf.size < nbytes:
            self._buf = np.empty(nbytes, dtype=np.uint8)

    def take(self, shape: tuple[int, ...]) -> np.ndarray:
        n = int(np.prod(shape))
        self.reserve(n)
        return self._buf[:n].reshape(shape)


_SCRATCH = _ScratchPool()


def _fused_usable(array: BlockArray) -> bool:
    """Fused execution bypasses the counted read path, so it is only
    sound when nothing observes that path: no fault plane (crash/tear
    hooks fire on bulk reads) and no failed disks (counted reads raise
    :class:`DiskFailure`; views would silently serve stale bytes)."""
    return array.fault_plane is None and not array.failed_disks


#: per-chain destination-tile budget for the cross-op slot tiling below
_SLOT_TILE_BYTES = 1 << 17


def _run_phase_fused(
    program: CompiledPlan,
    ph: PhaseProgram,
    fz: FusedPhase,
    array: BlockArray,
    kernel: XorKernel,
) -> None:
    bs = array.block_size
    batch = fz.batch
    store = array.bulk_view(slice(None), slice(None)).reshape(-1, bs)
    out = _SCRATCH.take((fz.n_chains * batch, bs))

    # Cache-block across *chains*, not within one: the phase's chains all
    # read the same per-group source region, so computing every chain for
    # a tile of groups before advancing reuses those blocks from cache
    # instead of streaming the full source extent once per chain.
    tile = max(1, min(batch, _SLOT_TILE_BYTES // bs))

    def operand(term, lo: int, hi: int) -> np.ndarray:
        if term.kind == "stride":
            return store[term.start + lo * term.step :: term.step][: hi - lo]
        if term.kind == "const":
            return store[term.start : term.start + 1]
        if term.kind == "gather":
            return store[term.indices[lo:hi]]
        return out[term.ref * batch + lo : term.ref * batch + hi]  # 'ref'

    xor_bytes = 0
    for lo in range(0, batch, tile):
        hi = min(batch, lo + tile)
        for op in fz.ops:
            dst = out[op.chain_index * batch + lo : op.chain_index * batch + hi]
            kernel.region_xor_reduce(dst, [operand(t, lo, hi) for t in op.terms], init=True)
            xor_bytes += len(op.terms) * dst.nbytes
            for sp in op.sparse:
                # sp.rows is sorted; select the slots of this tile
                a, b = np.searchsorted(sp.rows, (lo, hi))
                if a < b:
                    kernel.scatter_xor(dst, sp.rows[a:b] - lo, store[sp.indices[a:b]])
                    xor_bytes += int(b - a) * bs

    # the views above replaced the counted stripe gather; credit the
    # identical per-disk read traffic (duplicates and all)
    array.credit_ios(reads=fz.read_credit)
    if ph.parity_disk.size:
        array.write_blocks(ph.parity_disk, ph.parity_block, out[fz.parity_src])
    if ph.check_disk.size:
        actual = array.gather_raw(ph.check_disk, ph.check_block)
        expect = out[fz.check_src]
        if not np.array_equal(expect, actual):
            bad = np.flatnonzero((expect != actual).any(axis=1))
            raise AssertionError(
                f"pre-existing parity at {bad.size} location(s) of phase "
                f"{ph.phase} does not match the recomputed value — old "
                "parity was not valid"
            )

    registry = get_registry()
    if registry.enabled:
        registry.counter("kernels.fused_phases", kernel=kernel.name).inc()
        registry.counter("kernels.region_ops", kernel=kernel.name).inc(len(fz.ops))
        registry.counter("kernels.xor_bytes", kernel=kernel.name).inc(xor_bytes)


def _run_phase(
    program: CompiledPlan,
    ph: PhaseProgram,
    array: BlockArray,
    kernel: XorKernel | None = None,
    use_fused: bool = True,
) -> None:
    code = program.code
    # 1. migrations: bulk read → bulk write (counted, queue order)
    if ph.migrate_src_disk.size:
        payload = array.read_blocks(ph.migrate_src_disk, ph.migrate_src_block)
        array.write_blocks(ph.migrate_dst_disk, ph.migrate_dst_block, payload)
    # 2. NULL invalidation writes
    if ph.null_disk.size:
        array.write_zero_blocks(ph.null_disk, ph.null_block)
    # 3. metadata trims (uncounted)
    if ph.trim_disk.size:
        array.trim_blocks(ph.trim_disk, ph.trim_block)
    if ph.batch == 0:
        return  # pure degrade phase: nothing to generate
    if use_fused and ph.fused is not None and _fused_usable(array):
        if kernel is None:
            kernel = resolve_kernel()
        _run_phase_fused(program, ph, ph.fused, array, kernel)
        return
    # 4. assemble the batched stripe tensor
    stripes = _SCRATCH.take((ph.batch, code.rows, code.cols, array.block_size))
    stripes[...] = 0
    flat = stripes.reshape(-1, array.block_size)
    if ph.read_disk.size:
        flat[ph.read_cell] = array.read_blocks(ph.read_disk, ph.read_block)
    if ph.fill_disk.size:
        flat[ph.fill_cell] = array.gather_raw(ph.fill_disk, ph.fill_block)
    # 5. one batched encode for every group of the phase
    code.encode(stripes)
    # 6. scatter the generated parities
    if ph.parity_disk.size:
        array.write_blocks(ph.parity_disk, ph.parity_block, flat[ph.parity_cell])
    # 7. audit reused parities against the recomputed values (engine step 7)
    if ph.check_disk.size:
        actual = array.gather_raw(ph.check_disk, ph.check_block)
        if not np.array_equal(flat[ph.check_cell], actual):
            bad = np.flatnonzero((flat[ph.check_cell] != actual).any(axis=1))
            raise AssertionError(
                f"pre-existing parity at {bad.size} location(s) of phase "
                f"{ph.phase} does not match the recomputed value — old "
                "parity was not valid"
            )


def execute_compiled(
    program: CompiledPlan,
    array: BlockArray,
    kernel: XorKernel | str | None = None,
    use_fused: bool = True,
) -> None:
    """Run every phase of ``program`` on ``array`` (counters accumulate).

    ``kernel`` selects the XOR backend for fused phases — an
    :class:`XorKernel` instance, a registry name (``"numpy"``,
    ``"numba"``, ``"auto"``), or None for the process default.
    ``use_fused=False`` forces the stripe-tensor path (the pre-fusion
    baseline, kept for benchmarking and as the fault-path engine).
    """
    if (array.n_disks, array.blocks_per_disk) != (program.n_disks, program.blocks_per_disk):
        raise ValueError(
            f"array geometry {(array.n_disks, array.blocks_per_disk)} does not "
            f"match program {(program.n_disks, program.blocks_per_disk)}"
        )
    if not isinstance(kernel, XorKernel):
        kernel = resolve_kernel(kernel)
    fused_ok = use_fused and _fused_usable(array)
    # size the scratch pool once for the largest phase, so no phase
    # allocates (satellite: no per-op temporary churn)
    need = 0
    for ph in program.phases:
        if ph.batch == 0:
            continue
        if fused_ok and ph.fused is not None:
            need = max(need, ph.fused.n_chains * ph.batch * array.block_size)
        else:
            need = max(need, ph.batch * program.rows * program.cols * array.block_size)
    _SCRATCH.reserve(need)
    tracer = get_tracer()
    for ph in program.phases:
        fused = fused_ok and ph.fused is not None
        with tracer.span(
            f"phase{ph.phase}", cat="compiled.phase", phase=ph.phase, batch=ph.batch,
            migrates=int(ph.migrate_src_disk.size), nulls=int(ph.null_disk.size),
            parities=int(ph.parity_disk.size),
            path="fused" if fused else "stripe",
            kernel=kernel.name if fused else "",
        ):
            _run_phase(program, ph, array, kernel=kernel, use_fused=use_fused)


def execute_plan_compiled(
    plan: ConversionPlan,
    array: BlockArray,
    data: np.ndarray,
    program: CompiledPlan | None = None,
    kernel: XorKernel | str | None = None,
    use_fused: bool = True,
) -> ConversionResult:
    """Drop-in replacement for :func:`repro.migration.execute_plan`.

    Compiles ``plan`` (cached across calls) and executes it in bulk;
    raises :class:`~repro.compiled.compiler.UnsupportedPlanError` when
    the plan cannot be batched faithfully — fall back to the audited
    engine in that case.  ``kernel`` / ``use_fused`` are forwarded to
    :func:`execute_compiled`.
    """
    tracer = get_tracer()
    if program is None:
        with tracer.span(
            "compile", cat="compiled", code=plan.code.name, approach=plan.approach,
            groups=plan.groups,
        ):
            program = compile_plan(plan)
    array.reset_counters()
    with tracer.span(
        "execute", cat="compiled", engine="compiled", code=plan.code.name,
        approach=plan.approach, groups=plan.groups,
    ):
        execute_compiled(program, array, kernel=kernel, use_fused=use_fused)
    return ConversionResult(
        array=array,
        plan=plan,
        data=data,
        measured_reads=array.total_reads,
        measured_writes=array.total_writes,
    )
