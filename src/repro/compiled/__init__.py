"""Compiled execution layer: conversion plans as NumPy index programs.

``compile_plan`` lowers any :class:`ConversionPlan` — every code and
approach the planners support — into flat gather/scatter index vectors
plus batched parity encodes; ``execute_plan_compiled`` replays the
program against a :class:`BlockArray` through the counted bulk-I/O API,
producing the byte-identical array and per-disk counters of the audited
engine at a fraction of the wall time.  ``assemble_all_groups`` /
``batch_recover_columns`` apply the same idea to recovery.  See
``docs/architecture.md`` ("Compiled execution layer").
"""

from repro.compiled.compiler import (
    LOWERING_VERSION,
    PROGRAM_CACHE_VERSION,
    UnsupportedPlanError,
    clear_program_cache,
    compile_plan,
    lower_program,
    plan_cache_key,
    program_cache_dir,
    program_cache_file,
    program_cache_info,
    set_program_cache_dir,
)
from repro.compiled.executor import execute_compiled, execute_plan_compiled
from repro.compiled.program import (
    CompiledPlan,
    FusedPhase,
    PhaseProgram,
    RegionOp,
    RegionTerm,
    SparseTerm,
)
from repro.compiled.recovery import assemble_all_groups, batch_recover_columns

__all__ = [
    "CompiledPlan",
    "FusedPhase",
    "LOWERING_VERSION",
    "PROGRAM_CACHE_VERSION",
    "PhaseProgram",
    "RegionOp",
    "RegionTerm",
    "SparseTerm",
    "UnsupportedPlanError",
    "assemble_all_groups",
    "batch_recover_columns",
    "clear_program_cache",
    "compile_plan",
    "execute_compiled",
    "execute_plan_compiled",
    "lower_program",
    "plan_cache_key",
    "program_cache_dir",
    "program_cache_file",
    "program_cache_info",
    "set_program_cache_dir",
]
