"""Batched stripe assembly and recovery over whole arrays.

The audited path assembles and repairs one stripe-group at a time;
rebuild and verification workloads touch *every* group, so this module
compiles the ``(group, cell) -> (disk, block)`` map of a conversion plan
into one gather index and runs :func:`apply_recovery_plan` across the
whole ``(groups, rows, cols, block)`` batch in a single pass — the
recovery-side counterpart of the compiled conversion executor.
"""

from __future__ import annotations

import numpy as np

from repro.codes.decoder import apply_recovery_plan
from repro.codes.plans import RecoveryPlan
from repro.migration.plan import ConversionPlan
from repro.raid.array import BlockArray

__all__ = ["assemble_all_groups", "batch_recover_columns"]

#: cache of gather indices per plan identity (see compiler.plan_cache_key)
_GATHER_CACHE: dict[tuple, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}


def _gather_indices(plan: ConversionPlan) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    from repro.compiled.compiler import plan_cache_key

    key = plan_cache_key(plan)
    cached = _GATHER_CACHE.get(key)
    if cached is not None:
        return cached
    rows, cols = plan.code.rows, plan.code.cols
    cells, disks, blocks = [], [], []
    for (group, (r, c)), loc in plan.cell_locations.items():
        cells.append((group * rows + r) * cols + c)
        disks.append(loc.disk)
        blocks.append(loc.block)
    out = (
        np.array(cells, dtype=np.intp),
        np.array(disks, dtype=np.intp),
        np.array(blocks, dtype=np.intp),
    )
    _GATHER_CACHE[key] = out
    return out


def assemble_all_groups(plan: ConversionPlan, array: BlockArray) -> np.ndarray:
    """Uncounted gather of every converted stripe-group at once.

    Returns ``(groups, rows, cols, block)``; cells without a physical
    location (virtual disks) are zero.  Batched equivalent of calling
    :func:`repro.migration.engine.assemble_group` per group.
    """
    cells, disks, blocks = _gather_indices(plan)
    stripes = np.zeros(
        (plan.groups, plan.code.rows, plan.code.cols, array.block_size), dtype=np.uint8
    )
    stripes.reshape(-1, array.block_size)[cells] = array.gather_raw(disks, blocks)
    return stripes


def batch_recover_columns(
    recovery: RecoveryPlan, stripes: np.ndarray, *cols: int
) -> np.ndarray:
    """Zero the failed columns of every stripe and repair them in one pass.

    ``stripes`` is ``(groups, rows, cols, block)`` and is modified in
    place; returns it.  One vectorised XOR per recovery step covers all
    groups (versus one :func:`apply_recovery_plan` call per group).
    """
    if stripes.ndim != 4:
        raise ValueError("stripes must be (groups, rows, cols, block)")
    for c in cols:
        stripes[:, :, c, :] = 0
    return apply_recovery_plan(recovery, stripes)
