"""Index-program IR for compiled conversion execution.

A :class:`CompiledPlan` is a :class:`~repro.migration.plan.ConversionPlan`
lowered to flat numpy index vectors: per phase, the counted migrations,
NULL writes and trims become gather/scatter index pairs, and every
stripe-group that generates parity contributes rows to one batched
``(groups, rows, cols, block)`` stripe tensor that is filled by two
gathers (counted reads, uncounted controller-memory pulls), encoded with
one batched :meth:`ArrayCode.encode`, and scattered back with one counted
bulk write.  Executing the program performs *exactly* the audited
engine's I/O — same bytes, same per-disk counters — without any
per-block Python.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.codes.base import ArrayCode

__all__ = [
    "RegionTerm",
    "SparseTerm",
    "RegionOp",
    "FusedPhase",
    "PhaseProgram",
    "CompiledPlan",
]


def _empty() -> np.ndarray:
    return np.zeros(0, dtype=np.intp)


# ---------------------------------------------------------------------------
# fused region-reduction IR (the lowering pass's output; see
# repro.compiled.compiler.lower_program)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RegionTerm:
    """One full-height operand of a :class:`RegionOp`.

    Kinds address the flat block store ``store[disk * bpd + block]``:

    * ``stride`` — slots read an arithmetic sequence of block addresses;
      executes as the zero-copy view ``store[start::step][:batch]``.
    * ``const`` — every slot reads the same block; a one-row broadcast.
    * ``gather`` — irregular addresses; ``indices`` holds one flat block
      id per slot (the only kind that still copies its operand).
    * ``ref`` — the output of earlier chain ``ref`` in the same phase's
      scratch buffer (a parity used as a member of a later chain).
    """

    kind: str
    start: int = 0
    step: int = 0
    indices: np.ndarray | None = None
    ref: int = -1


@dataclass(frozen=True)
class SparseTerm:
    """A partial-height operand: only ``rows`` of the destination get a
    contribution (``dst[rows[i]] ^= store[indices[i]]``), the other slots
    see the implicit zero of an absent stripe cell.  Executed with
    :meth:`~repro.kernels.base.XorKernel.scatter_xor`.
    """

    rows: np.ndarray
    indices: np.ndarray


@dataclass(frozen=True)
class RegionOp:
    """One parity chain for every group of the phase, as a region reduction.

    Writes rows ``[chain_index * batch, (chain_index + 1) * batch)`` of
    the phase scratch buffer with the XOR of all ``terms`` (and then the
    ``sparse`` remainders).  ``parity`` is the stripe cell the chain
    computes — carried for the staticcheck cross-validation, not needed
    at execution time.
    """

    chain_index: int
    parity: tuple[int, int]
    terms: tuple[RegionTerm, ...]
    sparse: tuple[SparseTerm, ...]


@dataclass(frozen=True)
class FusedPhase:
    """A phase's parity work lowered to kernel-backend region ops.

    ``parity_src`` / ``check_src`` map the program's ``parity_*`` /
    ``check_*`` vectors (same order) to rows of the ``(n_chains * batch,
    block)`` scratch buffer; ``read_credit`` is the per-disk read count
    the classic path would have performed with
    :meth:`~repro.raid.array.BlockArray.read_blocks` (the fused path
    views the store in place and credits the same I/O).
    """

    n_chains: int
    batch: int
    ops: tuple[RegionOp, ...]
    parity_src: np.ndarray
    check_src: np.ndarray
    read_credit: np.ndarray


@dataclass(frozen=True)
class PhaseProgram:
    """One conversion phase as flat index vectors.

    ``*_disk`` / ``*_block`` address the :class:`BlockArray`;
    ``*_cell`` are flat indices into the phase's batched stripe tensor
    (``slot * rows * cols + row * cols + col``).  All vectors of one
    category have equal length.
    """

    phase: int
    #: groups that generate parity this phase (batch size of the stripe tensor)
    batch: int
    # counted migrations: gather sources, scatter destinations (payload copy)
    migrate_src_disk: np.ndarray = field(default_factory=_empty)
    migrate_src_block: np.ndarray = field(default_factory=_empty)
    migrate_dst_disk: np.ndarray = field(default_factory=_empty)
    migrate_dst_block: np.ndarray = field(default_factory=_empty)
    # counted NULL invalidation writes
    null_disk: np.ndarray = field(default_factory=_empty)
    null_block: np.ndarray = field(default_factory=_empty)
    # uncounted metadata trims
    trim_disk: np.ndarray = field(default_factory=_empty)
    trim_block: np.ndarray = field(default_factory=_empty)
    # counted reads feeding the stripe tensor
    read_disk: np.ndarray = field(default_factory=_empty)
    read_block: np.ndarray = field(default_factory=_empty)
    read_cell: np.ndarray = field(default_factory=_empty)
    # uncounted fills (data already in controller memory / on disk, reused)
    fill_disk: np.ndarray = field(default_factory=_empty)
    fill_block: np.ndarray = field(default_factory=_empty)
    fill_cell: np.ndarray = field(default_factory=_empty)
    # counted writes of freshly generated parities
    parity_disk: np.ndarray = field(default_factory=_empty)
    parity_block: np.ndarray = field(default_factory=_empty)
    parity_cell: np.ndarray = field(default_factory=_empty)
    # reused-parity consistency audit (uncounted compare, engine step 7)
    check_disk: np.ndarray = field(default_factory=_empty)
    check_block: np.ndarray = field(default_factory=_empty)
    check_cell: np.ndarray = field(default_factory=_empty)
    #: kernel-backend lowering of the parity work (None: not lowered —
    #: executor uses the stripe-tensor path); derived from the vectors
    #: above, so it is never serialised, always recomputed
    fused: FusedPhase | None = None


@dataclass(frozen=True)
class CompiledPlan:
    """A fully lowered conversion: phases plus the geometry they assume."""

    key: tuple
    code: ArrayCode
    n_disks: int
    blocks_per_disk: int
    phases: tuple[PhaseProgram, ...]

    @property
    def rows(self) -> int:
        return self.code.rows

    @property
    def cols(self) -> int:
        return self.code.cols

    def describe(self) -> str:
        reads = sum(p.read_disk.size + p.migrate_src_disk.size for p in self.phases)
        writes = sum(
            p.parity_disk.size + p.null_disk.size + p.migrate_dst_disk.size
            for p in self.phases
        )
        return (
            f"compiled {self.key[0]}/{self.key[1]} p={self.key[2]}: "
            f"{len(self.phases)} phase(s), {reads} reads, {writes} writes"
        )
