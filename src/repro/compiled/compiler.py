"""Lower a :class:`ConversionPlan` into a :class:`CompiledPlan`.

The audited engine executes stripe-groups one at a time in ``(phase,
group)`` order; the compiled executor batches each phase into a handful
of numpy gathers and scatters.  The two are byte-identical only if
reordering group work within a phase cannot change what any read
observes or which write lands last, so compilation runs a *hazard
analysis* before emitting a program:

* no physical location is written twice in a phase by different groups
  (same-group writes of different kinds keep their engine order);
* a migration read never targets a location an earlier group (or an
  earlier migration of the same group) writes in the same phase;
* a stripe-assembly read of group ``g`` never targets a location a
  *later* group migrates/NULLs/trims, nor one an *earlier* group
  parity-writes (those are the two orderings batching flips);
* reused-parity audit reads never target any location written in the
  phase.

Every plan the library's planners produce satisfies these (groups own
disjoint block rows; the only cross-group flow — HDP's overflow repack —
is migration-then-encode, which batching preserves).  A hand-built plan
that violates them raises :class:`UnsupportedPlanError` instead of
silently diverging; callers fall back to the audited engine.

Programs are cached per ``(code, approach, p, m, n, groups,
blocks_per_disk, extra)`` so benchmark sweeps that rebuild identical
plans pay compilation once.

Two cache tiers share that key:

* the in-process dict above (``_CACHE``), and
* an optional **persistent on-disk cache** (:func:`set_program_cache_dir`
  or the ``REPRO_PROGRAM_CACHE`` environment variable): compiled phase
  vectors are serialised to a content-addressed ``.npz`` (sha-256 of the
  cache key plus :data:`PROGRAM_CACHE_VERSION`), so neither sweep pool
  workers nor successive CLI runs ever recompile an unchanged plan.  A
  geometry change or a version bump hashes to a different file (a clean
  miss); a corrupted or mismatched file is treated as a miss and
  overwritten — never served.  :func:`program_cache_info` exposes the
  tier-by-tier counters (``compiled`` counts actual compilations).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import zipfile
from collections import defaultdict
from pathlib import Path

import numpy as np

from repro.codes.base import ArrayCode
from repro.compiled.program import (
    CompiledPlan,
    FusedPhase,
    PhaseProgram,
    RegionOp,
    RegionTerm,
    SparseTerm,
)
from repro.migration.plan import ConversionPlan, GroupWork

__all__ = [
    "UnsupportedPlanError",
    "compile_plan",
    "lower_program",
    "clear_program_cache",
    "program_cache_info",
    "PROGRAM_CACHE_VERSION",
    "LOWERING_VERSION",
    "set_program_cache_dir",
    "program_cache_dir",
    "program_cache_file",
]


class UnsupportedPlanError(ValueError):
    """The plan cannot be batched without changing its semantics."""


# write kinds, in the order both the engine (within a group) and the
# executor (within a phase) apply them
_MIGRATE, _NULL, _TRIM, _PARITY = range(4)

#: bump when the compiled-program layout changes; old cache files then
#: hash to different names and are recompiled, not misread
PROGRAM_CACHE_VERSION = 1

#: bump when the region-fusion pass changes.  The fused IR is derived
#: deterministically from the phase vectors and never serialised, but
#: the version participates in the cache digest so a lowering change
#: invalidates persistent entries wholesale (a clean recompile beats
#: debugging a stale program whose re-derived fusion disagrees with the
#: vectors that produced it).  The *kernel backend* is deliberately NOT
#: part of the key: every backend executes the same lowered program.
LOWERING_VERSION = 1

_CACHE: dict[tuple, CompiledPlan] = {}
#: module-lifetime cache outcomes (mirrored into the repro.obs registry
#: by record_compiler_cache; kept here so clearing the registry cannot
#: lose the authoritative numbers).  ``hits``/``misses`` are the
#: in-memory tier; ``disk_*`` the persistent tier; ``compiled`` counts
#: actual compilations (a warm two-tier cache keeps it at zero).
_CACHE_STATS = {
    "hits": 0,
    "misses": 0,
    "disk_hits": 0,
    "disk_misses": 0,
    "disk_errors": 0,
    "compiled": 0,
}

_DISK_CACHE_DIR: Path | None = (
    Path(os.environ["REPRO_PROGRAM_CACHE"]) if os.environ.get("REPRO_PROGRAM_CACHE") else None
)


def set_program_cache_dir(path: str | Path | None) -> Path | None:
    """Point the persistent tier at ``path`` (None disables); returns previous."""
    global _DISK_CACHE_DIR
    prev = _DISK_CACHE_DIR
    _DISK_CACHE_DIR = Path(path) if path is not None else None
    return prev


def program_cache_dir() -> Path | None:
    return _DISK_CACHE_DIR


def plan_cache_key(plan: ConversionPlan) -> tuple:
    """Identity of a planner-built plan (builders are deterministic)."""
    return (
        plan.code.name,
        plan.approach,
        plan.p,
        plan.m,
        plan.n,
        plan.groups,
        plan.blocks_per_disk,
        plan.extra_blocks_per_disk,
        tuple(sorted(plan.code.layout.virtual_cells)),
    )


def clear_program_cache() -> None:
    """Drop compiled programs (hit/miss stats survive; see _CACHE_STATS)."""
    _CACHE.clear()


def program_cache_info() -> dict[str, int]:
    return {"entries": len(_CACHE), **_CACHE_STATS}


# --------------------------------------------------------------------------
# persistent tier: content-addressed .npz of the phase index vectors
# --------------------------------------------------------------------------

#: the PhaseProgram index-vector fields, in serialisation order
_PHASE_FIELDS = (
    "migrate_src_disk", "migrate_src_block", "migrate_dst_disk", "migrate_dst_block",
    "null_disk", "null_block", "trim_disk", "trim_block",
    "read_disk", "read_block", "read_cell",
    "fill_disk", "fill_block", "fill_cell",
    "parity_disk", "parity_block", "parity_cell",
    "check_disk", "check_block", "check_cell",
)


def _key_json(key: tuple) -> list:
    """The cache key as JSON-safe nested lists (tuples become lists)."""
    return [
        [list(cell) if isinstance(cell, tuple) else cell for cell in item]
        if isinstance(item, tuple)
        else item
        for item in key
    ]


def program_cache_file(key: tuple) -> Path | None:
    """Content-addressed path of ``key`` in the persistent tier (or None)."""
    if _DISK_CACHE_DIR is None:
        return None
    digest = hashlib.sha256(
        json.dumps(
            [PROGRAM_CACHE_VERSION, LOWERING_VERSION, _key_json(key)], sort_keys=True
        ).encode()
    ).hexdigest()
    return _DISK_CACHE_DIR / f"{key[0]}-{key[1]}-p{key[2]}-{digest[:32]}.npz"


def _store_program_to_disk(path: Path, program: CompiledPlan) -> None:
    """Atomic write (tmp + rename) so racing pool workers never see torn files."""
    arrays: dict[str, np.ndarray] = {}
    meta = {
        "version": PROGRAM_CACHE_VERSION,
        "key": _key_json(program.key),
        "n_disks": program.n_disks,
        "blocks_per_disk": program.blocks_per_disk,
        "phases": [{"phase": ph.phase, "batch": ph.batch} for ph in program.phases],
    }
    for i, ph in enumerate(program.phases):
        for field in _PHASE_FIELDS:
            arrays[f"p{i}_{field}"] = getattr(ph, field)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, meta=np.str_(json.dumps(meta)), **arrays)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def _load_program_from_disk(path: Path, key: tuple, plan: ConversionPlan) -> CompiledPlan | None:
    """Deserialise ``path``; None on any corruption or key mismatch."""
    try:
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(str(data["meta"]))
            if meta["version"] != PROGRAM_CACHE_VERSION or meta["key"] != _key_json(key):
                return None
            phases = []
            for i, ph_meta in enumerate(meta["phases"]):
                vectors = {
                    field: np.asarray(data[f"p{i}_{field}"], dtype=np.intp)
                    for field in _PHASE_FIELDS
                }
                phases.append(
                    PhaseProgram(phase=ph_meta["phase"], batch=ph_meta["batch"], **vectors)
                )
        return CompiledPlan(
            key=key,
            code=plan.code,
            n_disks=int(meta["n_disks"]),
            blocks_per_disk=int(meta["blocks_per_disk"]),
            phases=tuple(phases),
        )
    except (OSError, KeyError, ValueError, EOFError, zipfile.BadZipFile,
            json.JSONDecodeError):
        return None


def compile_plan(plan: ConversionPlan, use_cache: bool = True) -> CompiledPlan:
    """Compile ``plan`` (two-tier cached); raises :class:`UnsupportedPlanError`."""
    key = plan_cache_key(plan)
    if use_cache and key in _CACHE:
        _CACHE_STATS["hits"] += 1
        return _CACHE[key]
    _CACHE_STATS["misses"] += 1
    disk_path = program_cache_file(key) if use_cache else None
    if disk_path is not None and disk_path.exists():
        program = _load_program_from_disk(disk_path, key, plan)
        if program is not None:
            _CACHE_STATS["disk_hits"] += 1
            program = lower_program(program)
            _CACHE[key] = program
            return program
        _CACHE_STATS["disk_errors"] += 1
    elif disk_path is not None:
        _CACHE_STATS["disk_misses"] += 1
    _CACHE_STATS["compiled"] += 1
    by_phase: dict[int, list[GroupWork]] = defaultdict(list)
    for gw in sorted(plan.group_works, key=lambda g: (g.phase, g.group)):
        by_phase[gw.phase].append(gw)
    phases = tuple(
        _compile_phase(plan, phase, gws) for phase, gws in sorted(by_phase.items())
    )
    program = CompiledPlan(
        key=key,
        code=plan.code,
        n_disks=plan.n,
        blocks_per_disk=plan.blocks_per_disk,
        phases=phases,
    )
    if use_cache and disk_path is not None:
        # persist the raw index vectors only; the fused IR is re-derived
        _store_program_to_disk(disk_path, program)
    program = lower_program(program)
    if use_cache:
        _CACHE[key] = program
    return program


def _compile_phase(plan: ConversionPlan, phase: int, gws: list[GroupWork]) -> PhaseProgram:
    layout = plan.code.layout
    rows, cols = layout.rows, layout.cols
    bpd = plan.blocks_per_disk

    def flat(loc) -> int:
        return loc.disk * bpd + loc.block

    # write-side hazard bookkeeping: location -> [(group, kind)]
    writes: dict[int, list[tuple[int, int]]] = defaultdict(list)

    mig_src: list[tuple[int, int]] = []  # (disk, block)
    mig_dst: list[tuple[int, int]] = []
    mig_src_group: list[int] = []
    nulls: list[tuple[int, int]] = []
    trims: list[tuple[int, int]] = []

    encode_groups = [gw for gw in gws if gw.parity_writes]
    slot_of = {gw.group: i for i, gw in enumerate(encode_groups)}

    for gw in gws:
        for src, dst, _rp, _wp in gw.migrates.values():
            mig_src.append((src.disk, src.block))
            mig_dst.append((dst.disk, dst.block))
            mig_src_group.append(gw.group)
            writes[flat(dst)].append((gw.group, _MIGRATE))
        for loc in gw.null_writes.values():
            nulls.append((loc.disk, loc.block))
            writes[flat(loc)].append((gw.group, _NULL))
        for loc in gw.trims:
            trims.append((loc.disk, loc.block))
            writes[flat(loc)].append((gw.group, _TRIM))

    reads: list[tuple[int, int, int]] = []  # (disk, block, cell)
    fills: list[tuple[int, int, int]] = []
    parities: list[tuple[int, int, int]] = []
    checks: list[tuple[int, int, int]] = []
    fill_group: list[int] = []
    read_group: list[int] = []
    check_locs: list[int] = []

    for gw in encode_groups:
        base = slot_of[gw.group] * rows * cols

        def cell_idx(cell) -> int:
            return base + cell[0] * cols + cell[1]

        for cell, loc in gw.parity_writes.items():
            parities.append((loc.disk, loc.block, cell_idx(cell)))
            writes[flat(loc)].append((gw.group, _PARITY))
        for cell, loc in gw.reads.items():
            reads.append((loc.disk, loc.block, cell_idx(cell)))
            read_group.append(gw.group)
        # cells the engine pulls uncounted (controller memory, step 5)
        touched = set(gw.parity_writes) | set(gw.null_writes) | gw.null_cells | set(gw.reads)
        for cell in layout.data_cells:
            if cell in touched or cell in gw.migrates:
                continue
            loc = plan.cell_locations.get((gw.group, cell))
            if loc is not None:
                fills.append((loc.disk, loc.block, cell_idx(cell)))
                fill_group.append(gw.group)
        # reused parities the engine audits after encoding (step 7)
        for cell in layout.parity_cells:
            if cell in gw.parity_writes or cell in layout.virtual_cells:
                continue
            loc = plan.cell_locations.get((gw.group, cell))
            if loc is None:
                continue
            checks.append((loc.disk, loc.block, cell_idx(cell)))
            check_locs.append(flat(loc))

    _check_hazards(
        writes,
        mig_src=[(d * bpd + b, g) for (d, b), g in zip(mig_src, mig_src_group)],
        gathers=[(d * bpd + b, g) for (d, b, _c), g in zip(reads, read_group)]
        + [(d * bpd + b, g) for (d, b, _c), g in zip(fills, fill_group)],
        check_locs=check_locs,
    )

    def cols_of(pairs: list, idx: int) -> np.ndarray:
        return np.array([p[idx] for p in pairs], dtype=np.intp)

    return PhaseProgram(
        phase=phase,
        batch=len(encode_groups),
        migrate_src_disk=cols_of(mig_src, 0),
        migrate_src_block=cols_of(mig_src, 1),
        migrate_dst_disk=cols_of(mig_dst, 0),
        migrate_dst_block=cols_of(mig_dst, 1),
        null_disk=cols_of(nulls, 0),
        null_block=cols_of(nulls, 1),
        trim_disk=cols_of(trims, 0),
        trim_block=cols_of(trims, 1),
        read_disk=cols_of(reads, 0),
        read_block=cols_of(reads, 1),
        read_cell=cols_of(reads, 2),
        fill_disk=cols_of(fills, 0),
        fill_block=cols_of(fills, 1),
        fill_cell=cols_of(fills, 2),
        parity_disk=cols_of(parities, 0),
        parity_block=cols_of(parities, 1),
        parity_cell=cols_of(parities, 2),
        check_disk=cols_of(checks, 0),
        check_block=cols_of(checks, 1),
        check_cell=cols_of(checks, 2),
    )


def _check_hazards(
    writes: dict[int, list[tuple[int, int]]],
    mig_src: list[tuple[int, int]],
    gathers: list[tuple[int, int]],
    check_locs: list[int],
) -> None:
    """Prove phase-level batching preserves the engine's group order."""
    for loc, entries in writes.items():
        if len(entries) == 1:
            continue
        groups = {g for g, _k in entries}
        if len(groups) > 1:
            raise UnsupportedPlanError(
                f"location {loc} written by multiple groups {sorted(groups)} in one phase"
            )
        kinds = [k for _g, k in entries]
        if len(kinds) != len(set(kinds)):
            raise UnsupportedPlanError(
                f"location {loc} written twice by the same group and kind"
            )
    for loc, g in mig_src:
        for g_w, kind in writes.get(loc, ()):
            if g_w < g or (g_w == g and kind == _MIGRATE):
                raise UnsupportedPlanError(
                    f"migration source {loc} of group {g} is overwritten "
                    f"earlier in the phase (group {g_w})"
                )
    for loc, g in gathers:
        for g_w, kind in writes.get(loc, ()):
            if kind == _PARITY:
                if g_w < g:
                    raise UnsupportedPlanError(
                        f"stripe read at {loc} (group {g}) follows a parity "
                        f"write by group {g_w}; batching would reorder them"
                    )
            elif g_w > g:
                raise UnsupportedPlanError(
                    f"stripe read at {loc} (group {g}) precedes a write by "
                    f"later group {g_w}; batching would reorder them"
                )
    for loc in check_locs:
        if loc in writes:
            raise UnsupportedPlanError(
                f"reused-parity audit location {loc} is written in the same phase"
            )


# --------------------------------------------------------------------------
# region-fusion lowering: stripe-tensor encode -> kernel-backend RegionOps
# --------------------------------------------------------------------------
#
# The stripe-tensor path gathers every read/fill into a (batch, rows,
# cols, block) tensor, runs ArrayCode.encode, and scatters the parities
# back — two full copies of the working set before any XOR happens.  The
# fusion pass removes both: the stripe value of any cell is, by
# construction, the physical block its slot reads/fills (or zero), so
# each parity chain can be computed for all groups at once by XOR-ing
# *views of the block store directly* into a (batch, block) destination.
# The per-slot source addresses of one member almost always form an
# arithmetic sequence (groups own evenly spaced block rows), so the
# operand is a zero-copy strided view; irregular members degrade to a
# gather and partially-sourced members to a scatter_xor, never to a
# wrong answer.  Chains whose parity feeds a later chain are computed in
# encode order and referenced from the scratch buffer, mirroring
# encode's dependency order exactly.


def lower_program(program: CompiledPlan) -> CompiledPlan:
    """Attach the fused region-op IR to every phase of ``program``.

    Fusion replays :meth:`ArrayCode.encode` symbolically, so it is only
    valid for codes using the stock chain-walk encode; a subclass with a
    custom ``encode`` keeps ``fused=None`` and runs the tensor path.
    Phases that cannot be lowered (no parity work, or a shape the pass
    does not model) also keep ``fused=None`` — lowering never fails, it
    degrades.
    """
    if type(program.code).encode is not ArrayCode.encode:
        return program
    phases = tuple(
        dataclasses.replace(
            ph, fused=_lower_phase(ph, program.code, program.n_disks, program.blocks_per_disk)
        )
        for ph in program.phases
    )
    return dataclasses.replace(program, phases=phases)


def _classify_member(phys: np.ndarray) -> tuple[RegionTerm | None, SparseTerm | None]:
    """One member's per-slot physical addresses -> a term (``-1`` = the
    slot does not source the cell, i.e. its stripe value is zero)."""
    present = phys >= 0
    if not present.any():
        return None, None  # all-zero member: contributes nothing
    if not present.all():
        rows = np.flatnonzero(present).astype(np.intp)
        return None, SparseTerm(rows=rows, indices=phys[present].astype(np.intp))
    if phys.size == 1:
        return RegionTerm(kind="const", start=int(phys[0])), None
    steps = np.diff(phys)
    if (steps == steps[0]).all():
        step = int(steps[0])
        if step == 0:
            return RegionTerm(kind="const", start=int(phys[0])), None
        return RegionTerm(kind="stride", start=int(phys[0]), step=step), None
    return RegionTerm(kind="gather", indices=phys.astype(np.intp)), None


def _lower_phase(
    ph: PhaseProgram, code: ArrayCode, n_disks: int, bpd: int
) -> FusedPhase | None:
    if ph.batch == 0 or (ph.parity_cell.size == 0 and ph.check_cell.size == 0):
        return None
    layout = code.layout
    rows, cols = layout.rows, layout.cols
    cps = rows * cols  # cells per slot
    batch = ph.batch

    # stripe-cell sources: src[template, slot] = flat block id (or -1 = zero)
    src = np.full((cps, batch), -1, dtype=np.int64)
    for cell_v, disk_v, block_v in (
        (ph.read_cell, ph.read_disk, ph.read_block),
        (ph.fill_cell, ph.fill_disk, ph.fill_block),
    ):
        if cell_v.size:
            src[cell_v % cps, cell_v // cps] = disk_v * bpd + block_v

    # chains whose output the phase writes or audits, plus (transitively)
    # the chains those reference as members — in encode order
    out_templates = set((ph.parity_cell % cps).tolist()) | set((ph.check_cell % cps).tolist())
    virtual = layout.virtual_cells
    parity_cells = layout.parity_cells
    member_needs: set[tuple[int, int]] = set()
    needed: list = []
    for chain in reversed(layout.encode_order):
        if chain.parity in virtual:
            continue
        if chain.parity[0] * cols + chain.parity[1] in out_templates or chain.parity in member_needs:
            needed.append(chain)
            for m in chain.members:
                if m in parity_cells and m not in virtual:
                    member_needs.add(m)
    needed.reverse()
    ci_of = {chain.parity: ci for ci, chain in enumerate(needed)}

    ops = []
    for ci, chain in enumerate(needed):
        terms: list[RegionTerm] = []
        sparse: list[SparseTerm] = []
        for m in chain.members:
            if m in virtual:
                continue  # encode skips virtual members (always zero)
            if m in parity_cells:
                terms.append(RegionTerm(kind="ref", ref=ci_of[m]))
                continue
            term, sp = _classify_member(src[m[0] * cols + m[1]])
            if term is not None:
                terms.append(term)
            if sp is not None:
                sparse.append(sp)
        ops.append(
            RegionOp(chain_index=ci, parity=chain.parity, terms=tuple(terms), sparse=tuple(sparse))
        )

    def scratch_rows(cell_v: np.ndarray) -> np.ndarray | None:
        out = np.empty(cell_v.size, dtype=np.intp)
        for i, cell in enumerate(cell_v):
            tmpl = int(cell) % cps
            ci = ci_of.get((tmpl // cols, tmpl % cols))
            if ci is None:  # a parity/check cell with no chain: not lowerable
                return None
            out[i] = ci * batch + int(cell) // cps
        return out

    parity_src = scratch_rows(ph.parity_cell)
    check_src = scratch_rows(ph.check_cell)
    if parity_src is None or check_src is None:
        return None
    return FusedPhase(
        n_chains=len(needed),
        batch=batch,
        ops=tuple(ops),
        parity_src=parity_src,
        check_src=check_src,
        read_credit=np.bincount(ph.read_disk, minlength=n_disks).astype(np.int64),
    )
