"""Chrome trace-event export: real spans + simulated disk timelines.

Renders two kinds of activity into one Perfetto-viewable JSON file
(`chrome://tracing` / https://ui.perfetto.dev, the "JSON trace event
format"):

* **spans** recorded by :class:`repro.obs.tracer.Tracer` — plan /
  compile / execute / verify phases, online conversion-thread vs.
  application-write interleaving — one thread row per logical track;
* **simulated disk activity** from a :class:`~repro.simdisk.sim
  .DiskSchedule` — one thread row per disk, each request a complete
  ("X") slice whose args carry the seek/rotate/transfer breakdown from
  :meth:`DiskModel.service_components_vector`.

Everything is plain trace-event JSON: ``{"traceEvents": [...]}`` with
``ph: "X"`` duration events (``ts``/``dur`` in microseconds) and
``ph: "M"`` metadata naming the processes and threads.  Extra payloads
(the metrics snapshot) ride in the top-level ``otherData`` object, which
viewers ignore.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.obs.tracer import SpanRecord
from repro.simdisk.disk import DiskModel
from repro.simdisk.sim import DiskSchedule, closed_request_schedule
from repro.workloads.trace import Trace

__all__ = [
    "SPAN_PID",
    "DISK_PID",
    "span_events",
    "disk_events",
    "build_chrome_trace",
    "write_chrome_trace",
    "load_chrome_trace",
    "validate_chrome_trace",
]

#: trace-event process ids: one process for real (wall-clock) spans, one
#: for the simulated disks (simulated milliseconds — a different clock,
#: so a different process keeps the time bases visually separate).
SPAN_PID = 1
DISK_PID = 2

#: cap on exported disk slices — a Figure-19 trace has ~1.6M requests,
#: far beyond what a JSON viewer loads; exporters truncate per disk and
#: record the truncation in ``otherData``.
DEFAULT_MAX_DISK_SLICES = 200_000


def _meta(pid: int, name: str, tid: int | None = None, thread: str | None = None) -> list[dict]:
    events = []
    if thread is None:
        events.append(
            {"ph": "M", "pid": pid, "tid": 0, "name": "process_name", "args": {"name": name}}
        )
    else:
        events.append(
            {"ph": "M", "pid": pid, "tid": tid, "name": "thread_name", "args": {"name": thread}}
        )
    return events


def span_events(spans: Iterable[SpanRecord], pid: int = SPAN_PID) -> list[dict]:
    """Trace events for recorded spans: one thread row per track.

    Timestamps are rebased so the earliest span starts at t=0 (Perfetto
    displays relative time anyway; rebasing keeps the JSON small and the
    numbers readable).
    """
    spans = list(spans)
    if not spans:
        return []
    epoch = min(s.start_s for s in spans)
    tracks = sorted({s.track for s in spans})
    tid_of = {track: i + 1 for i, track in enumerate(tracks)}
    events = _meta(pid, "repro (wall clock)")
    for track, tid in tid_of.items():
        events += _meta(pid, "", tid=tid, thread=track)
    for s in spans:
        events.append(
            {
                "name": s.name,
                "cat": s.cat,
                "ph": "X",
                "pid": pid,
                "tid": tid_of[s.track],
                "ts": round((s.start_s - epoch) * 1e6, 3),
                "dur": round(s.dur_s * 1e6, 3),
                "args": dict(s.args),
            }
        )
    return events


def disk_events(
    schedule: DiskSchedule,
    pid: int = DISK_PID,
    max_slices: int | None = DEFAULT_MAX_DISK_SLICES,
) -> list[dict]:
    """Trace events for a simulated run: one thread row per disk.

    Each served request becomes a complete slice at its simulated start
    time (``ts``/``dur`` in microseconds of *simulated* time, 1 sim-ms ==
    1 trace-ms) with the seek/rotate/transfer breakdown in ``args``.
    """
    events = _meta(pid, "simulated disks")
    for d in range(schedule.n_disks):
        events += _meta(pid, "", tid=d + 1, thread=f"disk {d}")
    n = len(schedule)
    limit = n if max_slices is None else min(n, max_slices)
    for i in range(limit):
        events.append(
            {
                "name": "W" if schedule.is_write[i] else "R",
                "cat": "disk",
                "ph": "X",
                "pid": pid,
                "tid": int(schedule.disk[i]) + 1,
                "ts": round(float(schedule.start_ms[i]) * 1e3, 3),
                "dur": round(float(schedule.completion_ms[i] - schedule.start_ms[i]) * 1e3, 3),
                "args": {
                    "block": int(schedule.block[i]),
                    "seek_ms": round(float(schedule.seek_ms[i]), 6),
                    "rotate_ms": round(float(schedule.rotate_ms[i]), 6),
                    "transfer_ms": round(float(schedule.transfer_ms[i]), 6),
                },
            }
        )
    return events


def build_chrome_trace(
    spans: Iterable[SpanRecord] | None = None,
    schedule: DiskSchedule | None = None,
    metrics: dict | None = None,
    max_disk_slices: int | None = DEFAULT_MAX_DISK_SLICES,
    meta: dict | None = None,
) -> dict:
    """Assemble the trace-event JSON object from its parts."""
    events: list[dict] = []
    if spans is not None:
        events += span_events(spans)
    if schedule is not None:
        events += disk_events(schedule, max_slices=max_disk_slices)
    other: dict = dict(meta or {})
    if schedule is not None:
        n = len(schedule)
        exported = n if max_disk_slices is None else min(n, max_disk_slices)
        other["disk_requests"] = n
        other["disk_slices_exported"] = exported
        if exported < n:
            other["disk_slices_truncated"] = n - exported
        other["per_disk_busy_ms"] = [float(b) for b in schedule.per_disk_busy_ms()]
    if metrics is not None:
        other["metrics"] = metrics
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(
    path: str | Path,
    spans: Iterable[SpanRecord] | None = None,
    schedule: DiskSchedule | None = None,
    metrics: dict | None = None,
    max_disk_slices: int | None = DEFAULT_MAX_DISK_SLICES,
    meta: dict | None = None,
) -> dict:
    """Write the trace JSON to ``path``; returns the written object."""
    doc = build_chrome_trace(
        spans=spans,
        schedule=schedule,
        metrics=metrics,
        max_disk_slices=max_disk_slices,
        meta=meta,
    )
    Path(path).write_text(json.dumps(doc) + "\n")
    return doc


def load_chrome_trace(path: str | Path) -> dict:
    return json.loads(Path(path).read_text())


def simulated_schedule_for_trace(
    trace: Trace,
    model: DiskModel,
    n_disks: int | None = None,
    reorder_window: int | None = None,
) -> DiskSchedule:
    """Convenience re-export of :func:`closed_request_schedule`."""
    return closed_request_schedule(
        trace, model, n_disks=n_disks, reorder_window=reorder_window
    )


def validate_chrome_trace(doc: dict) -> list[str]:
    """Check ``doc`` against the trace-event schema; returns problems.

    Not a full JSON-schema validation — the format is loosely specified —
    but everything Perfetto's importer requires of the events we emit:
    the ``traceEvents`` array, per-event ``ph``/``pid``/``tid``/``name``,
    and non-negative numeric ``ts``/``dur`` on complete events.
    """
    problems: list[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "B", "E", "M", "i", "C"):
            problems.append(f"event {i}: unknown ph {ph!r}")
            continue
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                problems.append(f"event {i}: {key} missing or not an int")
        if not isinstance(ev.get("name"), str):
            problems.append(f"event {i}: name missing")
        if ph == "X":
            for key in ("ts", "dur"):
                v = ev.get(key)
                if not isinstance(v, (int, float)) or v < 0:
                    problems.append(f"event {i}: {key} missing or negative")
            if "args" in ev and not isinstance(ev["args"], dict):
                problems.append(f"event {i}: args not an object")
    return problems
