"""Cross-process aggregation of observability state.

Sweep pool workers each run a private :class:`MetricsRegistry` and
:class:`Tracer`; what crosses the process boundary is their JSON-safe
snapshot (``registry.snapshot()`` / ``[span.to_dict()]``), and the parent
folds every worker's snapshot into one registry and one span list so a
parallel run produces a single coherent metrics dump and one Perfetto
timeline — exactly like a serial run, plus per-worker tracks.

Merge semantics per instrument kind:

* **counters** add (total I/Os across workers are the sum);
* **gauges** take the last merged value (they describe configuration —
  ``conversion.p`` and friends — identical across workers by design);
* **histograms** fold bucket-by-bucket (:meth:`Histogram.merge_dict`),
  so merged percentiles rank over the union of observations.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.tracer import SpanRecord

__all__ = ["merge_snapshot", "spans_from_dicts"]


def merge_snapshot(snapshot: dict, registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Fold one ``registry.snapshot()`` dict into ``registry`` (default global)."""
    registry = registry if registry is not None else get_registry()
    for c in snapshot.get("counters", ()):
        registry.counter(c["name"], **c["labels"]).inc(c["value"])
    for g in snapshot.get("gauges", ()):
        registry.gauge(g["name"], **g["labels"]).set(g["value"])
    for h in snapshot.get("histograms", ()):
        bounds = tuple(float(b) for b in h["buckets"] if b != "+Inf")
        registry.histogram(h["name"], buckets=bounds, **h["labels"]).merge_dict(h)
    return registry


def spans_from_dicts(dicts, track_prefix: str = "") -> list[SpanRecord]:
    """Rehydrate ``span.to_dict()`` payloads, optionally namespacing tracks.

    ``track_prefix`` keeps each worker's spans on its own Perfetto track
    (e.g. ``worker-3/compiled``) so overlapping wall-clock intervals from
    different processes do not interleave on one row.
    """
    spans = []
    for d in dicts:
        track = f"{track_prefix}{d['track']}" if track_prefix else d["track"]
        spans.append(
            SpanRecord(
                name=d["name"],
                cat=d["cat"],
                track=track,
                start_s=d["start_s"],
                dur_s=d["dur_s"],
                args=dict(d.get("args", {})),
            )
        )
    return spans
