"""repro.obs — structured tracing, metrics and Perfetto timelines.

Zero-dependency observability for every execution layer:

* :mod:`repro.obs.metrics` — a labelled Counter/Gauge/Histogram registry
  (snapshot / reset / Prometheus-style text) absorbing the counters that
  used to live ad hoc on ``BlockArray``, the plan compiler and
  ``simdisk``;
* :mod:`repro.obs.tracer` — nestable ``perf_counter`` spans with logical
  tracks, no-op cheap when disabled;
* :mod:`repro.obs.timeline` — Chrome trace-event JSON export (viewable
  in Perfetto) of real spans plus simulated per-disk activity with
  seek/rotate/transfer breakdown;
* :mod:`repro.obs.record` — post-run bridges copying subsystem tallies
  into the registry;
* :mod:`repro.obs.stats` — the ``repro stats`` trace summariser.

Typical use::

    from repro import obs

    obs.enable()                         # tracing + hot-path metrics on
    ... run a conversion / simulation ...
    obs.write_chrome_trace("out.json", spans=obs.get_tracer().spans)
    print(obs.get_registry().render_text())
    obs.disable()
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.obs.record import (
    record_array_io,
    record_compiler_cache,
    record_conversion,
    record_fault_plane,
    record_fleet_report,
    record_online_report,
    record_sim_result,
    record_staticcheck,
)
from repro.obs.merge import merge_snapshot, spans_from_dicts
from repro.obs.stats import render_summary, summarise_trace
from repro.obs.timeline import (
    build_chrome_trace,
    disk_events,
    load_chrome_trace,
    span_events,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.tracer import Span, SpanRecord, Tracer, get_tracer, set_tracer

__all__ = [
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "get_registry",
    "set_registry",
    # tracing
    "Span",
    "SpanRecord",
    "Tracer",
    "get_tracer",
    "set_tracer",
    # timeline export
    "build_chrome_trace",
    "write_chrome_trace",
    "load_chrome_trace",
    "validate_chrome_trace",
    "span_events",
    "disk_events",
    # recording bridges
    "record_array_io",
    "record_compiler_cache",
    "record_conversion",
    "record_fault_plane",
    "record_fleet_report",
    "record_online_report",
    "record_sim_result",
    "record_staticcheck",
    # cross-process merging
    "merge_snapshot",
    "spans_from_dicts",
    # stats
    "summarise_trace",
    "render_summary",
    # switches
    "enable",
    "disable",
    "is_enabled",
]


def enable(tracing: bool = True, metrics: bool = True) -> None:
    """Turn on span collection and hot-path metrics on the defaults."""
    if tracing:
        get_tracer().enable()
    if metrics:
        get_registry().enabled = True


def disable() -> None:
    """Turn off span collection and hot-path metrics on the defaults."""
    get_tracer().disable()
    get_registry().enabled = False


def is_enabled() -> bool:
    return get_tracer().enabled or get_registry().enabled
