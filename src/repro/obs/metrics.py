"""Metrics registry: counters, gauges and fixed-bucket histograms.

Zero-dependency (stdlib + numpy) process-local metrics, in the spirit of
a Prometheus client but sized for a reproduction harness: a
:class:`MetricsRegistry` hands out labelled :class:`Counter` /
:class:`Gauge` / :class:`Histogram` instruments keyed by ``(name,
labels)``, snapshots to plain dicts (JSON-ready), renders a
Prometheus-style text exposition, and resets between runs.

The registry absorbs the ad-hoc counters that previously lived on their
subsystems — :class:`~repro.raid.array.BlockArray` per-disk I/O tallies,
the plan-compiler cache hits/misses, ``simdisk`` queue depths and busy
time — into one queryable namespace (see :mod:`repro.obs.record` for the
bridge functions).

Instruments are cheap (one dict hit to obtain, one add to update) but
ambient *hot-path* collection is additionally gated on
``registry.enabled`` so that instrumented inner loops cost a single
attribute check when observability is off.
"""

from __future__ import annotations

import json
import math
from typing import Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "get_registry",
    "set_registry",
]

#: default histogram buckets (upper bounds, ms) — spans five orders of
#: magnitude so both sub-ms compiled phases and multi-second simulated
#: makespans land in a resolvable bucket.
DEFAULT_LATENCY_BUCKETS_MS: tuple[float, ...] = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def to_dict(self) -> dict:
        return {"name": self.name, "labels": dict(self.labels), "value": self.value}


class Gauge:
    """A value that can go up and down (busy time, queue depth, ratio)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def reset(self) -> None:
        self.value = 0.0

    def to_dict(self) -> dict:
        return {"name": self.name, "labels": dict(self.labels), "value": self.value}


class Histogram:
    """Fixed-bucket histogram with percentile estimation.

    Buckets are upper bounds; observations above the last bound land in
    an overflow bucket.  Percentiles interpolate linearly within the
    winning bucket (the overflow bucket reports its lower bound), which
    is the usual fixed-bucket estimator: exact ranking, bounded value
    error of one bucket width.
    """

    __slots__ = ("name", "labels", "bounds", "counts", "count", "sum", "_min", "_max")

    def __init__(self, name: str, labels: dict, buckets: Iterable[float] | None = None):
        self.name = name
        self.labels = labels
        bounds = tuple(buckets) if buckets is not None else DEFAULT_LATENCY_BUCKETS_MS
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 overflow
        self.count = 0
        self.sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        lo, hi = 0, len(self.bounds)
        while lo < hi:  # bisect over the bounds
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += 1
        self.count += 1
        self.sum += value
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def observe_many(self, values) -> None:
        for v in values:
            self.observe(float(v))

    # -------------------------------------------------------------- queries
    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    @property
    def min(self) -> float:
        return self._min if self.count else 0.0

    @property
    def max(self) -> float:
        return self._max if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated ``q``-th percentile (``0 <= q <= 100``)."""
        if not 0 <= q <= 100:
            raise ValueError("q must be in [0, 100]")
        if self.count == 0:
            return 0.0
        rank = q / 100.0 * self.count
        cum = 0
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            if cum + c >= rank:
                lo = self.bounds[i - 1] if i > 0 else 0.0
                if i >= len(self.bounds):  # overflow bucket
                    return max(self.bounds[-1], self._min)
                hi = self.bounds[i]
                frac = (rank - cum) / c
                return lo + (hi - lo) * min(max(frac, 0.0), 1.0)
            cum += c
        return self._max

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def merge_dict(self, snapshot: dict) -> None:
        """Fold another histogram's :meth:`to_dict` into this one.

        The cross-process aggregation primitive (sweep workers snapshot
        their registries; the parent folds them in).  Bucket bounds must
        match exactly — merged percentiles are only meaningful over the
        same grid.
        """
        buckets = snapshot["buckets"]
        bounds = tuple(float(b) for b in buckets if b != "+Inf")
        if bounds != self.bounds:
            raise ValueError(f"bucket bounds {bounds} do not match {self.bounds}")
        for i, b in enumerate(self.bounds):
            self.counts[i] += int(buckets[str(b)])
        self.counts[-1] += int(buckets["+Inf"])
        self.count += int(snapshot["count"])
        self.sum += float(snapshot["sum"])
        if snapshot["count"]:
            self._min = min(self._min, float(snapshot["min"]))
            self._max = max(self._max, float(snapshot["max"]))

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "buckets": {
                **{str(b): c for b, c in zip(self.bounds, self.counts)},
                "+Inf": self.counts[-1],
            },
        }


class MetricsRegistry:
    """Get-or-create store of labelled instruments.

    ``enabled`` is an advisory flag for *hot-path* instrumentation
    (per-request loops check it once and skip collection when off);
    explicit recording — the CLI's ``--metrics`` bridge functions, user
    code — works regardless.
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._metrics: dict[tuple, Counter | Gauge | Histogram] = {}

    # ------------------------------------------------------------- creation
    def _get(self, cls, name: str, labels: dict, **kwargs):
        key = (cls.__name__, name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, labels, **kwargs)
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, buckets: Iterable[float] | None = None, **labels) -> Histogram:
        key = ("Histogram", name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = Histogram(name, labels, buckets=buckets)
            self._metrics[key] = metric
        return metric

    # -------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self):
        return iter(self._metrics.values())

    def snapshot(self) -> dict:
        """JSON-ready view: ``{"counters": [...], "gauges": [...], "histograms": [...]}``."""
        out: dict[str, list] = {"counters": [], "gauges": [], "histograms": []}
        for metric in self._metrics.values():
            if isinstance(metric, Counter):
                out["counters"].append(metric.to_dict())
            elif isinstance(metric, Gauge):
                out["gauges"].append(metric.to_dict())
            else:
                out["histograms"].append(metric.to_dict())
        for section in out.values():
            section.sort(key=lambda d: (d["name"], sorted(d["labels"].items())))
        return out

    def render_text(self) -> str:
        """Prometheus-style exposition (one ``name{labels} value`` per line)."""
        lines = []
        for section in ("counters", "gauges"):
            for m in self.snapshot()[section]:
                lines.append(f"{m['name']}{_fmt_labels(m['labels'])} {m['value']}")
        for m in self.snapshot()["histograms"]:
            base = f"{m['name']}{_fmt_labels(m['labels'])}"
            lines.append(
                f"{base} count={m['count']} sum={m['sum']:.6g} mean={m['mean']:.6g} "
                f"p50={m['p50']:.6g} p95={m['p95']:.6g} p99={m['p99']:.6g}"
            )
        return "\n".join(lines)

    def render_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    # ------------------------------------------------------------ lifecycle
    def reset(self) -> None:
        """Zero every instrument (identities survive)."""
        for metric in self._metrics.values():
            metric.reset()

    def clear(self) -> None:
        """Drop every instrument."""
        self._metrics.clear()


def _fmt_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry (tests); returns the previous one."""
    global _REGISTRY
    prev, _REGISTRY = _REGISTRY, registry
    return prev
