"""Bridges from subsystem state into the metrics registry.

The execution layers keep their own authoritative tallies — per-disk
read/write counters on :class:`~repro.raid.array.BlockArray`, op
accounting on :class:`~repro.migration.plan.ConversionPlan`, cache stats
in :mod:`repro.compiled.compiler`, latency summaries on
:class:`~repro.simdisk.sim.SimResult`.  These functions copy them into a
:class:`~repro.obs.metrics.MetricsRegistry` snapshot after a run, so the
``--metrics`` dump is one coherent namespace without adding bookkeeping
to any hot path.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry, get_registry

__all__ = [
    "record_array_io",
    "record_conversion",
    "record_online_report",
    "record_sim_result",
    "record_compiler_cache",
    "record_staticcheck",
    "record_fault_plane",
    "record_fleet_report",
]

#: foreground-latency buckets in Te ticks — online requests cost whole
#: ticks (1 for a read, a handful for an interrupted write); queueing
#: stalls behind a conversion run scale with the backlog and reach
#: hundreds of ticks on conversion-dominated schedules
ONLINE_LATENCY_BUCKETS_TICKS: tuple[float, ...] = (
    1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0, 48.0, 64.0,
    128.0, 256.0, 512.0, 1024.0,
)


def record_array_io(array, registry: MetricsRegistry | None = None, prefix: str = "array") -> None:
    """Per-disk and total read/write counters from a :class:`BlockArray`."""
    registry = registry if registry is not None else get_registry()
    stats = array.io_stats()
    for d, (r, w) in enumerate(zip(stats["reads"], stats["writes"])):
        registry.counter(f"{prefix}.reads", disk=d).inc(r)
        registry.counter(f"{prefix}.writes", disk=d).inc(w)
    registry.counter(f"{prefix}.reads.total").inc(stats["total_reads"])
    registry.counter(f"{prefix}.writes.total").inc(stats["total_writes"])


def record_conversion(result, registry: MetricsRegistry | None = None) -> None:
    """Measured vs. planned I/O of a :class:`ConversionResult`.

    ``conversion.reads.total`` / ``conversion.writes.total`` are the
    *measured* array counters; ``conversion.planned_*`` come from the
    plan's op accounting — equal whenever the engine is faithful (that
    equality is exactly what :func:`verify_conversion` enforces).
    """
    registry = registry if registry is not None else get_registry()
    plan = result.plan
    record_array_io(result.array, registry, prefix="conversion")
    registry.counter("conversion.planned_reads").inc(plan.read_ios)
    registry.counter("conversion.planned_writes").inc(plan.write_ios)
    for name, value in (
        ("code", plan.code.name),
        ("approach", plan.approach),
    ):
        registry.gauge("conversion.info", key=name, value=value).set(1.0)
    registry.gauge("conversion.p").set(plan.p)
    registry.gauge("conversion.groups").set(plan.groups)
    registry.gauge("conversion.data_blocks").set(plan.data_blocks)


def record_online_report(
    report, registry: MetricsRegistry | None = None, prefix: str = "online"
) -> None:
    """Counters, batch accounting and the foreground-latency histogram
    of an :class:`~repro.migration.online.OnlineReport`.

    Foreground latency is what the application observed: the queueing
    stall behind the conversion thread plus the request's own service
    ticks (``request_stalls[i] + request_latencies[i]``).  It lands in a
    tick-bucketed, kernel-labelled histogram so ``repro stats`` renders
    p50/p95/p99 per backend — the number the batched path must not
    regress.
    """
    registry = registry if registry is not None else get_registry()
    kernel = report.kernel or "per-parity"
    for name, value in (
        ("conversion_ticks", report.conversion_ticks),
        ("app_ticks", report.app_ticks),
        ("interruptions", report.interruptions),
        ("parities_generated", report.parities_generated),
        ("writes_to_converted", report.writes_to_converted),
        ("writes_to_unconverted", report.writes_to_unconverted),
        ("degraded_reads", report.degraded_reads),
        ("failures_survived", report.failures_survived),
        ("runs_committed", report.runs_committed),
        ("batch_shrinks", report.batch_shrinks),
    ):
        registry.counter(f"{prefix}.{name}", kernel=kernel).inc(int(value))
    registry.gauge(f"{prefix}.finish_tick", kernel=kernel).set(float(report.finish_tick))
    registry.gauge(f"{prefix}.max_run", kernel=kernel).set(float(report.max_run))
    hist = registry.histogram(
        f"{prefix}.request_latency_ticks",
        buckets=ONLINE_LATENCY_BUCKETS_TICKS,
        kernel=kernel,
    )
    stalls = report.request_stalls or [0.0] * len(report.request_latencies)
    for stall, service in zip(stalls, report.request_latencies):
        hist.observe(stall + service)
    for q in (50, 95, 99):
        registry.gauge(
            f"{prefix}.request_latency_ticks.p{q}", kernel=kernel
        ).set(hist.percentile(q))


def record_sim_result(result, registry: MetricsRegistry | None = None, prefix: str = "sim") -> None:
    """Makespan, per-disk busy/requests and latency digest of a sim run."""
    registry = registry if registry is not None else get_registry()
    registry.gauge(f"{prefix}.makespan_ms").set(result.makespan_ms)
    registry.counter(f"{prefix}.requests").inc(result.n_requests)
    for q, v in (
        ("mean", result.mean_latency_ms),
        ("p50", result.p50_latency_ms),
        ("p95", result.p95_latency_ms),
        ("p99", result.p99_latency_ms),
    ):
        registry.gauge(f"{prefix}.latency_ms", quantile=q).set(v)
    for d, busy in enumerate(result.per_disk_busy_ms):
        registry.gauge(f"{prefix}.busy_ms", disk=d).set(float(busy))
    if result.per_disk_requests is not None:
        for d, c in enumerate(result.per_disk_requests):
            registry.counter(f"{prefix}.disk_requests", disk=d).inc(int(c))


def record_compiler_cache(registry: MetricsRegistry | None = None) -> None:
    """Plan-compiler cache entries/hits/misses (module-lifetime stats)."""
    from repro.compiled.compiler import program_cache_info

    registry = registry if registry is not None else get_registry()
    info = program_cache_info()
    registry.gauge("compiler.cache.entries").set(info["entries"])
    for key, value in info.items():
        if key == "entries":
            continue
        c = registry.counter(f"compiler.cache.{key}")
        c.reset()
        c.inc(value)


def record_fault_plane(plane, registry: MetricsRegistry | None = None) -> None:
    """Injection/recovery tallies of a :class:`~repro.faults.FaultPlane`.

    Counter-shaped entries (faults hit, retries, reconstructions, …)
    land as ``faults.<name>`` counters; the scalar odometers (ops seen,
    crashable events, accumulated backoff, outstanding sector errors)
    as gauges — together they are the ``repro stats`` fault section.
    """
    registry = registry if registry is not None else get_registry()
    snap = plane.snapshot()
    gauges = {
        "backoff_ticks",
        "ops_seen",
        "crashable_events",
        "outstanding_sector_errors",
    }
    for name, value in snap.items():
        if name in gauges:
            registry.gauge(f"faults.{name}").set(float(value))
        else:
            registry.counter(f"faults.{name}").inc(int(value))


def record_fleet_report(
    report: dict, registry: MetricsRegistry | None = None, prefix: str = "fleet"
) -> None:
    """Health, QoS and recovery tallies of one fleet report.

    Volume health lands as state-labelled ``fleet.volume_state`` gauges
    (a point-in-time census of the fleet), breaker/rebuild/crash
    recovery as counters, and per-tenant closed-state foreground
    latency — the number the QoS gate scores — as quantile-labelled
    gauges plus one merged tick-bucketed histogram, so ``repro stats``
    renders the fleet section next to the online-conversion one.
    """
    registry = registry if registry is not None else get_registry()
    for state, count in report["states"].items():
        registry.gauge(f"{prefix}.volume_state", state=state).set(float(count))
    for name in (
        "breaker_trips",
        "rebuilds_completed",
        "crashes",
        "resumes",
        "degraded_reads",
        "stripes_scrubbed",
        "scrub_errors",
        "divergent_blocks",
    ):
        registry.counter(f"{prefix}.{name}").inc(int(report[name]))
    registry.counter(f"{prefix}.volumes").inc(int(report["volumes_total"]))
    registry.counter(f"{prefix}.volumes_complete").inc(int(report["volumes_complete"]))
    registry.gauge(f"{prefix}.breaker_open_ticks").set(float(report["breaker_open_ticks"]))
    spares = report["spares"]
    registry.gauge(f"{prefix}.spares_free").set(float(spares["free"]))
    registry.counter(f"{prefix}.spares_attached").inc(int(spares["granted"]))
    registry.counter(f"{prefix}.spares_denied").inc(int(spares["denied"]))
    for gate, ok in report["gates"].items():
        registry.gauge(f"{prefix}.gate", gate=gate).set(1.0 if ok else 0.0)
    for tenant, t in report["tenants"].items():
        registry.gauge(
            f"{prefix}.closed_latency_ticks.worst_p99", tenant=tenant
        ).set(float(t["worst_closed_p99"]))
        if t["p99_target"] is not None:
            registry.gauge(
                f"{prefix}.qos_target_ticks.p99", tenant=tenant
            ).set(float(t["p99_target"]))
    hist = registry.histogram(
        f"{prefix}.request_latency_ticks", buckets=ONLINE_LATENCY_BUCKETS_TICKS
    )
    for vol in report["volumes"]:
        lat = vol["latency"]
        for q in (50, 95, 99):
            registry.gauge(
                f"{prefix}.volume_latency_ticks.p{q}",
                volume=vol["volume_id"], tenant=vol["tenant"],
            ).set(float(lat[f"p{q}"]))
        for sample in lat["ticks"]:
            hist.observe(sample)


def record_staticcheck(report, registry: MetricsRegistry | None = None) -> None:
    """Checks/findings/durations of a :class:`~repro.staticcheck.CheckReport`.

    Findings are counted per ``(analyzer, rule)`` label pair so a metrics
    dashboard distinguishes a lint regression from a broken proof.
    """
    registry = registry if registry is not None else get_registry()
    for analyzer, n in report.checks.items():
        registry.counter("staticcheck.checks", analyzer=analyzer).inc(n)
    for finding in report.findings:
        registry.counter(
            "staticcheck.findings", analyzer=finding.analyzer, rule=finding.rule
        ).inc()
    for analyzer, seconds in report.durations.items():
        registry.gauge("staticcheck.duration_s", analyzer=analyzer).set(seconds)
    registry.counter("staticcheck.internal_errors").inc(len(report.internal_errors))
    registry.gauge("staticcheck.exit_code").set(report.exit_code)
