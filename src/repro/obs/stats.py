"""Summarise a saved Chrome trace (the ``repro stats`` subcommand).

Reads a trace-event JSON written by :mod:`repro.obs.timeline` (or any
tool emitting the same format) and reduces it to the numbers one
actually greps for: wall time per span name, per-track totals, per-disk
request counts and seek/rotate/transfer time split, plus the embedded
metrics snapshot if present.
"""

from __future__ import annotations

from collections import defaultdict
from pathlib import Path

from repro.obs.timeline import load_chrome_trace, validate_chrome_trace

__all__ = ["summarise_trace", "render_summary"]


def summarise_trace(path: str | Path) -> dict:
    """Digest of a trace file; raises ``ValueError`` on schema problems."""
    doc = load_chrome_trace(path)
    problems = validate_chrome_trace(doc)
    if problems:
        raise ValueError(f"not a valid trace-event file: {problems[:3]}")
    events = doc["traceEvents"]
    thread_names: dict[tuple[int, int], str] = {}
    for ev in events:
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            thread_names[(ev["pid"], ev["tid"])] = ev["args"]["name"]

    spans: dict[str, dict] = defaultdict(lambda: {"count": 0, "total_ms": 0.0})
    tracks: dict[str, dict] = defaultdict(lambda: {"count": 0, "total_ms": 0.0})
    disks: dict[str, dict] = defaultdict(
        lambda: {"requests": 0, "busy_ms": 0.0, "seek_ms": 0.0, "rotate_ms": 0.0,
                 "transfer_ms": 0.0, "end_ms": 0.0}
    )
    for ev in events:
        if ev.get("ph") != "X":
            continue
        dur_ms = ev["dur"] / 1e3
        track = thread_names.get((ev["pid"], ev["tid"]), f"tid {ev['tid']}")
        if ev.get("cat") == "disk":
            d = disks[track]
            d["requests"] += 1
            d["busy_ms"] += dur_ms
            d["end_ms"] = max(d["end_ms"], (ev["ts"] + ev["dur"]) / 1e3)
            args = ev.get("args", {})
            for comp in ("seek_ms", "rotate_ms", "transfer_ms"):
                d[comp] += args.get(comp, 0.0)
        else:
            s = spans[ev["name"]]
            s["count"] += 1
            s["total_ms"] += dur_ms
            t = tracks[track]
            t["count"] += 1
            t["total_ms"] += dur_ms
    return {
        "path": str(path),
        "n_events": len(events),
        "spans": dict(sorted(spans.items(), key=lambda kv: -kv[1]["total_ms"])),
        "tracks": dict(sorted(tracks.items())),
        "disks": dict(sorted(disks.items())),
        "other": doc.get("otherData", {}),
    }


def render_summary(summary: dict, top: int = 15) -> str:
    """Human-readable report of :func:`summarise_trace`'s digest."""
    lines = [f"trace {summary['path']}: {summary['n_events']} events"]
    if summary["spans"]:
        lines.append(f"\nspans (top {top} by total wall time):")
        lines.append(f"{'name':>32} {'count':>7} {'total ms':>12}")
        for name, s in list(summary["spans"].items())[:top]:
            lines.append(f"{name:>32} {s['count']:>7} {s['total_ms']:>12.3f}")
    if summary["tracks"]:
        lines.append("\nspan tracks:")
        for track, t in summary["tracks"].items():
            lines.append(f"  {track}: {t['count']} spans, {t['total_ms']:.3f} ms")
    if summary["disks"]:
        lines.append("\nsimulated disks (sim time):")
        lines.append(
            f"{'disk':>12} {'reqs':>8} {'busy ms':>12} {'seek':>10} {'rotate':>10} {'xfer':>10}"
        )
        for track, d in summary["disks"].items():
            lines.append(
                f"{track:>12} {d['requests']:>8} {d['busy_ms']:>12.1f} "
                f"{d['seek_ms']:>10.1f} {d['rotate_ms']:>10.1f} {d['transfer_ms']:>10.1f}"
            )
    other = summary.get("other", {})
    if other.get("disk_slices_truncated"):
        lines.append(
            f"\nnote: {other['disk_slices_truncated']} disk slices truncated at export "
            f"({other['disk_slices_exported']}/{other['disk_requests']} kept)"
        )
    metrics = other.get("metrics")
    if metrics:
        n = sum(len(v) for v in metrics.values() if isinstance(v, list))
        lines.append(f"\nembedded metrics snapshot: {n} instruments")
        lines.extend(_render_metric_values(metrics, top=top))
    return "\n".join(lines)


def _fmt_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def _render_metric_values(metrics: dict, top: int = 15) -> list[str]:
    """Counter/gauge values from an embedded registry snapshot.

    Counters are listed largest-first (the fault-injection tallies —
    ``faults.retries``, ``faults.degraded_reads`` — surface here);
    per-disk instruments collapse into the totals the summary already
    shows, so disk-labelled entries are folded into one line per name.
    """
    lines: list[str] = []
    counters = [c for c in metrics.get("counters", []) if c.get("value")]
    if counters:
        folded: dict[tuple, float] = {}
        for c in counters:
            labels = {k: v for k, v in c.get("labels", {}).items() if k != "disk"}
            key = (c["name"], tuple(sorted(labels.items())))
            folded[key] = folded.get(key, 0.0) + c["value"]
        lines.append("\ncounters:")
        ranked = sorted(folded.items(), key=lambda kv: -kv[1])
        for (name, labels), value in ranked[:top]:
            shown = f"{value:g}" if isinstance(value, float) else str(value)
            lines.append(f"  {name}{_fmt_labels(dict(labels))} = {shown}")
        if len(ranked) > top:
            lines.append(f"  … {len(ranked) - top} more")
    gauges = [g for g in metrics.get("gauges", []) if "disk" not in g.get("labels", {})]
    if gauges:
        lines.append("gauges:")
        for g in gauges[:top]:
            lines.append(f"  {g['name']}{_fmt_labels(g.get('labels', {}))} = {g['value']:g}")
        if len(gauges) > top:
            lines.append(f"  … {len(gauges) - top} more")
    return lines
