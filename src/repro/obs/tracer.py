"""Span tracer: nestable wall-clock spans with named logical tracks.

A :class:`Tracer` hands out context-managed :class:`Span` objects backed
by :func:`time.perf_counter`.  Spans nest naturally (Perfetto renders
containment from the timestamps of slices on the same track) and carry a
``track`` name so logically concurrent actors — the online converter's
conversion thread vs. the application writes, real spans vs. simulated
disks — land on separate rows of the timeline.

Disabled cost is one attribute check plus a shared no-op context
manager: instrumented code calls ``tracer.span(...)`` unconditionally
and pays nothing measurable when tracing is off (see
``benchmarks/bench_obs_overhead.py`` for the proof against the compiled
engine).
"""

from __future__ import annotations

from time import perf_counter

__all__ = ["SpanRecord", "Span", "Tracer", "get_tracer", "set_tracer"]


class SpanRecord:
    """One finished span (times in seconds since an arbitrary epoch)."""

    __slots__ = ("name", "cat", "track", "start_s", "dur_s", "args")

    def __init__(self, name: str, cat: str, track: str, start_s: float, dur_s: float, args: dict):
        self.name = name
        self.cat = cat
        self.track = track
        self.start_s = start_s
        self.dur_s = dur_s
        self.args = args

    @property
    def end_s(self) -> float:
        return self.start_s + self.dur_s

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "cat": self.cat,
            "track": self.track,
            "start_s": self.start_s,
            "dur_s": self.dur_s,
            "args": dict(self.args),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<span {self.track}/{self.name} {self.dur_s * 1e3:.3f}ms>"


class _NullSpan:
    """Shared do-nothing span for disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def set(self, **args) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Span:
    """A live span; records itself on the tracer when the block exits."""

    __slots__ = ("_tracer", "name", "cat", "track", "args", "_start")

    def __init__(self, tracer: "Tracer", name: str, cat: str, track: str, args: dict):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.track = track
        self.args = args

    def set(self, **args) -> None:
        """Attach or update span arguments mid-flight."""
        self.args.update(args)

    def __enter__(self) -> "Span":
        self._start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        dur = perf_counter() - self._start
        if exc_type is not None:
            self.args.setdefault("error", exc_type.__name__)
        self._tracer._record(
            SpanRecord(self.name, self.cat, self.track, self._start, dur, self.args)
        )


class Tracer:
    """Collects :class:`SpanRecord` objects while enabled."""

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.spans: list[SpanRecord] = []
        self._track = "main"

    # ------------------------------------------------------------ recording
    def span(self, name: str, cat: str = "repro", track: str | None = None, **args):
        """Open a span; use as ``with tracer.span("execute", groups=4):``.

        Returns the shared no-op span when tracing is disabled, so the
        call is safe (and cheap) on any hot path.
        """
        if not self.enabled:
            return _NULL_SPAN
        return Span(self, name, cat, track if track is not None else self._track, args)

    def instant(self, name: str, cat: str = "repro", track: str | None = None, **args) -> None:
        """Record a zero-duration marker."""
        if not self.enabled:
            return
        self._record(
            SpanRecord(name, cat, track if track is not None else self._track,
                       perf_counter(), 0.0, args)
        )

    def _record(self, record: SpanRecord) -> None:
        self.spans.append(record)

    # ------------------------------------------------------------- lifecycle
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        self.spans.clear()

    def set_track(self, track: str) -> str:
        """Set the default track for subsequent spans; returns the old one."""
        prev, self._track = self._track, track
        return prev

    # -------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self.spans)

    def by_name(self, name: str) -> list[SpanRecord]:
        return [s for s in self.spans if s.name == name]

    def total_s(self, name: str) -> float:
        return sum(s.dur_s for s in self.spans if s.name == name)


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide default tracer (disabled until enabled)."""
    return _TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the default tracer (tests); returns the previous one."""
    global _TRACER
    prev, _TRACER = _TRACER, tracer
    return prev
