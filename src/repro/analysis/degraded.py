"""Degraded-read cost model: serving reads with a failed disk.

After a disk fails and before its rebuild completes, reads of its blocks
reconstruct through a parity chain.  The cost per such read is the
cheapest single chain covering the block — another axis where layouts
differ (and another consequence of the conversion choice, since the
converted array lives with this profile for years).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codes.geometry import Cell, CodeLayout

__all__ = ["DegradedReadProfile", "degraded_read_profile", "degraded_read_table"]


@dataclass(frozen=True)
class DegradedReadProfile:
    """Per-column degraded-read costs for one layout."""

    layout_name: str
    column: int
    #: reads needed to serve each lost data cell (cheapest chain)
    per_cell_reads: dict[Cell, int]
    #: fraction of the stripe's data living on this column
    data_fraction: float

    @property
    def avg_reads_per_degraded_read(self) -> float:
        if not self.per_cell_reads:
            return 0.0
        return sum(self.per_cell_reads.values()) / len(self.per_cell_reads)

    @property
    def expected_read_cost(self) -> float:
        """Expected physical reads per logical read under this failure."""
        avg = self.avg_reads_per_degraded_read
        return self.data_fraction * avg + (1 - self.data_fraction) * 1.0


def _cheapest_chain_reads(layout: CodeLayout, cell: Cell, lost: set[Cell]) -> int | None:
    best: int | None = None
    virtual = layout.virtual_cells
    for chain in layout.chains:
        terms = [t for t in (chain.parity, *chain.members) if t not in virtual]
        hit = [t for t in terms if t in lost]
        if hit != [cell]:
            continue
        cost = len(terms) - 1
        if best is None or cost < best:
            best = cost
    return best


def degraded_read_profile(layout: CodeLayout, column: int) -> DegradedReadProfile:
    """Cost profile for reads while ``column`` is failed (pre-rebuild)."""
    if column not in layout.physical_cols:
        raise ValueError(f"column {column} is not physical in {layout.name}")
    lost = {
        (r, column)
        for r in range(layout.rows)
        if (r, column) not in layout.virtual_cells
    }
    data_lost = [c for c in lost if c in set(layout.data_cells)]
    per_cell: dict[Cell, int] = {}
    for cell in data_lost:
        cost = _cheapest_chain_reads(layout, cell, lost)
        if cost is None:
            raise ValueError(f"{layout.name}: cell {cell} unrecoverable alone")
        per_cell[cell] = cost
    return DegradedReadProfile(
        layout_name=layout.name,
        column=column,
        per_cell_reads=per_cell,
        data_fraction=len(data_lost) / max(layout.num_data, 1),
    )


def degraded_read_table(layout: CodeLayout) -> list[DegradedReadProfile]:
    """One profile per physical column (averaging basis for comparisons)."""
    return [degraded_read_profile(layout, c) for c in layout.physical_cols]
