"""Conversion metrics (Section V-A's eight evaluation metrics).

All ratios are normalised the way the paper normalises its figures:

* parity-operation ratios against ``B`` (total data blocks) — Figs 9-11;
* extra space against total per-disk capacity — Fig 12;
* XORs against ``B`` XOR operations — Fig 13;
* write / total I/Os against ``B`` I/O operations — Figs 14-15;
* conversion time against ``B * Te`` — Figs 16-17.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.timing import conversion_time
from repro.migration.plan import ConversionPlan

__all__ = ["ConversionMetrics", "metrics_from_plan"]


@dataclass(frozen=True)
class ConversionMetrics:
    """The paper's metric vector for one (code, approach, m, n) conversion."""

    code: str
    approach: str
    p: int
    m: int
    n: int
    data_blocks: int
    invalid_parity_ratio: float  # Fig 9
    migration_ratio: float  # Fig 10
    new_parity_ratio: float  # Fig 11
    extra_space_ratio: float  # Fig 12
    computation_cost: float  # Fig 13: XORs / B
    write_ios: float  # Fig 14: writes / B
    total_ios: float  # Fig 15: (reads+writes) / B
    time_nlb: float  # Fig 16: makespan / (B * Te)
    time_lb: float  # Fig 17

    @property
    def label(self) -> str:
        """The paper's series label, e.g. ``RAID-5->RAID-6(Code 5-6,4,5)``."""
        pretty = {
            "code56": "Code 5-6",
            "code56-right": "Code 5-6 (right)",
            "rdp": "RDP",
            "evenodd": "EVENODD",
            "hcode": "H-Code",
            "xcode": "X-Code",
            "pcode": "P-Code",
            "hdp": "HDP",
        }[self.code]
        arrow = {
            "direct": "RAID-5->RAID-6",
            "via-raid0": "RAID-5->RAID-0->RAID-6",
            "via-raid4": "RAID-5->RAID-4->RAID-6",
        }[self.approach]
        return f"{arrow}({pretty},{self.m},{self.n})"


def metrics_from_plan(plan: ConversionPlan) -> ConversionMetrics:
    """Derive every Section V metric from a block-accurate plan."""
    b = plan.data_blocks
    total_capacity = plan.blocks_per_disk
    return ConversionMetrics(
        code=plan.code.name,
        approach=plan.approach,
        p=plan.p,
        m=plan.m,
        n=plan.n,
        data_blocks=b,
        invalid_parity_ratio=plan.invalid_parities / b,
        migration_ratio=plan.migrated_parities / b,
        new_parity_ratio=plan.new_parities / b,
        extra_space_ratio=(
            plan.extra_blocks_per_disk / total_capacity if total_capacity else 0.0
        ),
        computation_cost=plan.xors / b,
        write_ios=plan.write_ios / b,
        total_ios=plan.total_ios / b,
        time_nlb=conversion_time(plan, load_balanced=False),
        time_lb=conversion_time(plan, load_balanced=True),
    )
