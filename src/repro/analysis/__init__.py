"""Quantitative analysis: conversion metrics, cost models, timing,
storage efficiency, reliability, and speedup tables."""

from repro.analysis.costmodel import CostModel, closed_form
from repro.analysis.efficiency import (
    EfficiencyPoint,
    code56_efficiency,
    efficiency_sweep,
    mds_raid6_efficiency,
)
from repro.analysis.metrics import ConversionMetrics, metrics_from_plan
from repro.analysis.reliability import (
    AFR_BY_AGE,
    ARR_BY_AGE,
    ConversionWindowRisk,
    afr_to_lambda,
    conversion_window_risk,
    mttdl_raid,
    mttdl_raid5,
    mttdl_raid6,
)
from repro.analysis.speedup import SpeedupCell, best_time_for_code, speedup_table
from repro.analysis.timing import conversion_time, phase_makespans

__all__ = [
    "CostModel",
    "closed_form",
    "ConversionMetrics",
    "metrics_from_plan",
    "conversion_time",
    "phase_makespans",
    "EfficiencyPoint",
    "code56_efficiency",
    "efficiency_sweep",
    "mds_raid6_efficiency",
    "AFR_BY_AGE",
    "ARR_BY_AGE",
    "ConversionWindowRisk",
    "afr_to_lambda",
    "conversion_window_risk",
    "mttdl_raid",
    "mttdl_raid5",
    "mttdl_raid6",
    "SpeedupCell",
    "best_time_for_code",
    "speedup_table",
]

from repro.analysis.writes import PartialWriteCost, average_partial_write_cost, partial_write_cost

__all__ += ["PartialWriteCost", "average_partial_write_cost", "partial_write_cost"]

from repro.analysis.degraded import DegradedReadProfile, degraded_read_profile, degraded_read_table

__all__ += ["DegradedReadProfile", "degraded_read_profile", "degraded_read_table"]
