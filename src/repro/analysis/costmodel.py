"""Closed-form conversion cost model (Section V's mathematical analysis).

The expressions below were derived by hand from the stripe geometries
(see the per-entry comments) and are validated in the test suite against
the block-accurate plans of :mod:`repro.migration.approaches` — the two
roads to the same numbers are independent, so agreement is a strong
check on both.

All quantities are per data block (the paper normalises everything to
``B``); ``D`` denotes the data blocks in one conversion group.  Closed
forms are given for the alignment-stable pairings (canonical widths);
X-Code and P-Code have group-dependent old-parity placement, so only
their cycle-averaged ratios are closed-form.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostModel", "closed_form", "comparison_width"]


def comparison_width(code: str, p: int) -> int:
    """Post-conversion disk count the paper (and ``closed_form``) uses.

    EVENODD is compared at ``n = p+1`` (source of ``p-1`` disks plus two,
    one data column shortened — e.g. "(EVENODD,4,6)"); every other code
    at its canonical width.
    """
    from repro.migration.approaches import canonical_disks

    if code == "evenodd":
        return p + 1
    return canonical_disks(code, p)


@dataclass(frozen=True)
class CostModel:
    """Per-data-block conversion costs; ``None`` = no simple closed form."""

    code: str
    approach: str
    p: int
    invalid_parity_ratio: float
    migration_ratio: float
    new_parity_ratio: float
    extra_space_ratio: float
    computation_cost: float
    write_ios: float
    total_ios: float
    time_nlb: float | None = None
    time_lb: float | None = None


def closed_form(code: str, approach: str, p: int) -> CostModel:
    """Closed-form cost model at the canonical width for ``(code, approach)``."""
    D = (p - 1) * (p - 2)  # data per group for the m = p-1 pairings

    if code == "code56-right":
        # the mirrored layout has identical costs by symmetry
        mirrored = closed_form("code56", approach, p)
        return CostModel(code, **{
            k: getattr(mirrored, k)
            for k in ("approach", "p", "invalid_parity_ratio", "migration_ratio",
                       "new_parity_ratio", "extra_space_ratio", "computation_cost",
                       "write_ios", "total_ios", "time_nlb", "time_lb")
        })

    if (code, approach) == ("code56", "direct"):
        # Reads all data once, writes one diagonal column; nothing else.
        return CostModel(
            code, approach, p,
            invalid_parity_ratio=0.0,
            migration_ratio=0.0,
            new_parity_ratio=1 / (p - 2),
            extra_space_ratio=0.0,
            computation_cost=(p - 3) / (p - 2),
            write_ios=1 / (p - 2),
            total_ios=(p - 1) / (p - 2),
            time_nlb=1 / (p - 2),  # the new disk's p-1 writes dominate
            time_lb=(p - 1) / (p * (p - 2)),
        )

    if (code, approach) == ("rdp", "via-raid0"):
        # p-1 NULL writes, then both parity columns; diagonal p-2 is
        # entirely NULLed old-parity slots, so only p-2 diagonals cost XORs.
        return CostModel(
            code, approach, p,
            invalid_parity_ratio=1 / (p - 2),
            migration_ratio=0.0,
            new_parity_ratio=2 / (p - 2),
            extra_space_ratio=0.0,
            computation_cost=((p - 1) * (p - 3) + (p - 2) ** 2) / D,
            write_ios=3 / (p - 2),
            total_ios=1 + 3 / (p - 2),
            time_nlb=p / D,  # 1 (NULL pass) + p-1 (new-disk writes)
            time_lb=(D + 3 * (p - 1)) / ((p + 1) * D),
        )

    if (code, approach) == ("rdp", "via-raid4"):
        # Migrate p-1 parities, re-read p-2 of them for the diagonals.
        return CostModel(
            code, approach, p,
            invalid_parity_ratio=0.0,
            migration_ratio=1 / (p - 2),
            new_parity_ratio=1 / (p - 2),
            extra_space_ratio=0.0,
            computation_cost=(p - 2) ** 2 / D,
            write_ios=2 / (p - 2),
            total_ios=(D + 4 * p - 5) / D,
            time_nlb=2 * (p - 1) / D,  # each phase bottlenecks on a new disk
            time_lb=(D + 4 * p - 5) / ((p + 1) * D),
        )

    if (code, approach) == ("evenodd", "via-raid0"):
        # At the paper's comparison width (m = p-1 source disks, one data
        # column shortened — the "(EVENODD,4,6)" pairing): like RDP plus
        # the adjuster S, which is computed once (p-3 XORs) and folded
        # into each of the p-2 non-degenerate diagonals with one XOR.
        return CostModel(
            code, approach, p,
            invalid_parity_ratio=1 / (p - 2),
            migration_ratio=0.0,
            new_parity_ratio=2 / (p - 2),
            extra_space_ratio=0.0,
            computation_cost=((p - 1) * (p - 3) + (p - 3) + (p - 2) ** 2) / D,
            write_ios=3 / (p - 2),
            total_ios=1 + 3 / (p - 2),
            time_nlb=p / D,
            time_lb=(D + 3 * (p - 1)) / ((p + 1) * D),
        )

    if (code, approach) == ("evenodd", "via-raid4"):
        # Same width as above (m = p-1, n = p+1).
        return CostModel(
            code, approach, p,
            invalid_parity_ratio=0.0,
            migration_ratio=1 / (p - 2),
            new_parity_ratio=1 / (p - 2),
            extra_space_ratio=0.0,
            computation_cost=((p - 3) + (p - 2) ** 2) / D,
            write_ios=2 / (p - 2),
            total_ios=(D + 3 * (p - 1)) / D,
            time_nlb=2 * (p - 1) / D,
            time_lb=(D + 3 * (p - 1)) / ((p + 1) * D),
        )

    if (code, approach) == ("hcode", "via-raid0"):
        # Old parities sit on the anti-diagonal parity cells, so
        # invalidation needs no NULL write (the slots are overwritten).
        return CostModel(
            code, approach, p,
            invalid_parity_ratio=1 / (p - 2),
            migration_ratio=0.0,
            new_parity_ratio=2 / (p - 2),
            extra_space_ratio=0.0,
            computation_cost=2 * (p - 1) * (p - 3) / D,
            write_ios=2 / (p - 2),
            total_ios=(D + 2 * (p - 1)) / D,
            time_nlb=(p - 1) / D,
            time_lb=(D + 2 * (p - 1)) / ((p + 1) * D),
        )

    if (code, approach) == ("hcode", "via-raid4"):
        return CostModel(
            code, approach, p,
            invalid_parity_ratio=0.0,
            migration_ratio=1 / (p - 2),
            new_parity_ratio=1 / (p - 2),
            extra_space_ratio=0.0,
            computation_cost=(p - 1) * (p - 3) / D,
            write_ios=2 / (p - 2),
            total_ios=(D + 3 * (p - 1)) / D,
            time_nlb=2 * (p - 1) / D,
            time_lb=(D + 3 * (p - 1)) / ((p + 1) * D),
        )

    if (code, approach) == ("xcode", "direct"):
        # m = p disks; a group is p-2 source rows, D = (p-1)(p-2) data.
        # The old parities of a group lie on one (r+c) anti-diagonal, so
        # exactly one anti-diagonal chain is entirely NULL.
        return CostModel(
            code, approach, p,
            invalid_parity_ratio=1 / (p - 1),
            migration_ratio=0.0,
            new_parity_ratio=2 * p / D,
            extra_space_ratio=2 / p,
            computation_cost=((p - 2) * (p - 4) + 2 * (p - 3) + (p - 1) * (p - 3)) / D,
            write_ios=(3 * p - 2) / D,
            total_ios=1 + (3 * p - 2) / D,
        )

    if (code, approach) == ("pcode", "direct"):
        # D = (p-2)(p-3)/2 per group; every data cell feeds two chains.
        Dp = (p - 2) * (p - 3) / 2
        return CostModel(
            code, approach, p,
            invalid_parity_ratio=1 / (p - 2),
            migration_ratio=0.0,
            new_parity_ratio=(p - 1) / Dp,
            extra_space_ratio=2 / (p - 1),
            computation_cost=(2 * Dp - (p - 1)) / Dp,
            write_ios=((p - 3) / 2 + (p - 1)) / Dp,
            total_ios=1 + ((p - 3) / 2 + (p - 1)) / Dp,
        )

    if (code, approach) == ("hdp", "direct"):
        # p-1 displaced blocks per group repack into overflow groups
        # (amortised 1/(p-3) overflow group per source group; exact when
        # (p-3) divides the group count).
        over = 1 / (p - 3)
        main_xor = (p - 1) * (p - 4) + (p - 1) * (p - 3)
        return CostModel(
            code, approach, p,
            invalid_parity_ratio=1 / (p - 2),
            migration_ratio=0.0,
            new_parity_ratio=2 * (p - 1) * (1 + over) / D,
            extra_space_ratio=1 / (p - 2),
            computation_cost=main_xor * (1 + over) / D,
            write_ios=((p - 1) + 2 * (p - 1) * (1 + over)) / D,
            total_ios=1 + ((p - 1) + 2 * (p - 1) * (1 + over)) / D,
        )

    raise KeyError(f"no closed form for ({code}, {approach})")
