"""Reliability analysis: Table I failure statistics, Markov MTTDL models,
and the conversion-window risk classification of Table VI.

Table I of the paper aggregates published AFR/ARR/ASER statistics by
drive age; we embed those numbers.  The MTTDL models are standard
continuous-time Markov chains over the number of concurrently failed
disks, solved exactly (fundamental-matrix method) rather than with the
usual closed-form approximations, so they remain valid for the short,
lopsided windows a conversion opens.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "AFR_BY_AGE",
    "ARR_BY_AGE",
    "HOURS_PER_YEAR",
    "afr_to_lambda",
    "mttdl_raid",
    "mttdl_raid5",
    "mttdl_raid6",
    "ConversionWindowRisk",
    "conversion_window_risk",
    "TABLE_VI_CLASSES",
]

HOURS_PER_YEAR = 8766.0

#: Annualized Failure Rate by drive age (years 1-5), Table I of the paper
#: (aggregated from Schroeder/Gibson FAST'07, Pinheiro et al. FAST'07,
#: Bairavasundaram SIGMETRICS'07, vendor manuals).
AFR_BY_AGE: dict[int, float] = {1: 0.017, 2: 0.081, 3: 0.086, 4: 0.058, 5: 0.072}

#: Annualized Repair (replacement) Rate by age, Table I.
ARR_BY_AGE: dict[int, float] = {1: 0.007, 2: 0.017, 3: 0.043, 4: 0.076, 5: 0.068}


def afr_to_lambda(afr: float) -> float:
    """Convert an AFR into a per-hour exponential failure rate.

    ``AFR = 1 - exp(-lambda * 8766h)``; for the small rates involved the
    exact inversion is used.
    """
    if not 0 <= afr < 1:
        raise ValueError("AFR must be in [0, 1)")
    return -np.log1p(-afr) / HOURS_PER_YEAR


def mttdl_raid(n_disks: int, tolerance: int, lam: float, mu: float) -> float:
    """Mean time to data loss of an ``n``-disk array tolerating
    ``tolerance`` concurrent failures.

    States 0..tolerance count failed disks; state ``tolerance+1`` (data
    loss) is absorbing.  From state ``k``: failure rate ``(n-k) * lam``,
    repair rate ``k * mu`` back to ``k-1``.  The expected absorption time
    from state 0 solves ``(-Q) t = 1`` over the transient states.
    """
    if n_disks <= tolerance:
        raise ValueError("array must have more disks than its tolerance")
    if lam <= 0 or mu <= 0:
        raise ValueError("rates must be positive")
    k = tolerance + 1  # transient states 0..tolerance
    q = np.zeros((k, k))
    for state in range(k):
        fail = (n_disks - state) * lam
        repair = state * mu
        q[state, state] = -(fail + repair)
        if state + 1 < k:
            q[state, state + 1] = fail
        if state - 1 >= 0:
            q[state, state - 1] = repair
    t = np.linalg.solve(-q, np.ones(k))
    return float(t[0])


def mttdl_raid5(n_disks: int, lam: float, mu: float) -> float:
    """MTTDL of RAID-5 (single-failure tolerance)."""
    return mttdl_raid(n_disks, 1, lam, mu)


def mttdl_raid6(n_disks: int, lam: float, mu: float) -> float:
    """MTTDL of RAID-6 (double-failure tolerance)."""
    return mttdl_raid(n_disks, 2, lam, mu)


#: Table VI of the paper: fault-tolerance classes of each conversion type.
TABLE_VI_CLASSES: dict[str, dict[str, str]] = {
    "via-raid0": {
        "reliability": "Low",
        "note": "No fault tolerance in RAID-0 during the window",
    },
    "via-raid4": {
        "reliability": "Medium",
        "note": "Errors may occur while old parity blocks are migrated",
    },
    "direct-vertical": {
        "reliability": "High",
        "note": "Old parity blocks should be retained until conversion is done",
    },
    "direct-code56": {
        "reliability": "High",
        "note": "No risk on parity loss (old parities stay in place and valid)",
    },
}


@dataclass(frozen=True)
class ConversionWindowRisk:
    """Quantified data-loss exposure during a conversion window."""

    approach: str
    reliability_class: str
    note: str
    tolerance_during_window: int
    window_hours: float
    loss_probability: float  # P(data loss during the window)


def _window_tolerance(approach: str, code: str) -> tuple[str, int]:
    if approach == "via-raid0":
        return "via-raid0", 0
    if approach == "via-raid4":
        return "via-raid4", 1
    if code == "code56":
        return "direct-code56", 1
    return "direct-vertical", 1


def conversion_window_risk(
    approach: str,
    code: str,
    n_disks: int,
    window_hours: float,
    afr: float,
    repair_hours: float = 24.0,
) -> ConversionWindowRisk:
    """Probability of losing data while a conversion is in flight.

    The array tolerates ``t`` failures during the window (Table VI); we
    compute ``P(absorption before window_hours)`` for the corresponding
    Markov chain by transient analysis (matrix exponential via
    eigen-decomposition of the small generator).
    """
    key, tol = _window_tolerance(approach, code)
    info = TABLE_VI_CLASSES[key]
    lam = afr_to_lambda(afr)
    mu = 1.0 / repair_hours
    k = tol + 1
    # generator over transient states plus absorbing state
    q = np.zeros((k + 1, k + 1))
    for state in range(k):
        fail = (n_disks - state) * lam
        repair = state * mu
        q[state, state] = -(fail + repair)
        q[state, state + 1] = fail
        if state - 1 >= 0:
            q[state, state - 1] = repair
    # p(t) = p(0) expm(Q t); Q is tiny, use scaling-and-squaring manually
    pt = _expm(q * window_hours)[0]
    return ConversionWindowRisk(
        approach=approach,
        reliability_class=info["reliability"],
        note=info["note"],
        tolerance_during_window=tol,
        window_hours=window_hours,
        loss_probability=float(pt[k]),
    )


def _expm(a: np.ndarray) -> np.ndarray:
    """Matrix exponential by scaling-and-squaring with a Taylor core.

    Adequate for the tiny (<= 4x4) generators used here; avoids a scipy
    dependency in the core library.
    """
    norm = np.abs(a).sum(axis=1).max()
    squarings = max(0, int(np.ceil(np.log2(norm + 1e-300))) + 1) if norm > 0 else 0
    scaled = a / (2 ** squarings)
    result = np.eye(a.shape[0])
    term = np.eye(a.shape[0])
    for i in range(1, 20):
        term = term @ scaled / i
        result = result + term
    for _ in range(squarings):
        result = result @ result
    return result
