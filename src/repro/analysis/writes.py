"""Write-path cost analysis: single writes and partial stripe writes.

Table III's "single write performance" column generalises to *partial
stripe writes* — the workload H-Code was designed for and one of the
reasons the paper scores conversion candidates on write behaviour.  For
``w`` consecutive logical blocks inside one stripe the controller picks
the cheaper of:

* **read-modify-write**: read the old data and each touched parity,
  apply XOR deltas (``2w + 2 * |touched parities|`` I/Os);
* **reconstruct-write**: read the untouched data, recompute every parity
  from scratch (``(D - w) + w + P`` I/Os).

Costs count I/O operations (the paper's ``Te`` unit); consecutive means
consecutive in the layout's row-major data order, matching how logical
addresses map onto stripes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codes.geometry import Cell, CodeLayout

__all__ = ["PartialWriteCost", "partial_write_cost", "average_partial_write_cost"]


@dataclass(frozen=True)
class PartialWriteCost:
    """I/O cost of one partial-stripe write."""

    layout_name: str
    start: int
    length: int
    parities_touched: int
    rmw_ios: int
    reconstruct_ios: int

    @property
    def ios(self) -> int:
        """The controller picks the cheaper path."""
        return min(self.rmw_ios, self.reconstruct_ios)

    @property
    def uses_reconstruct(self) -> bool:
        return self.reconstruct_ios < self.rmw_ios


def _touched_parities(layout: CodeLayout, cells: list[Cell]) -> set[Cell]:
    touched: set[Cell] = set()
    frontier = list(cells)
    while frontier:
        cur = frontier.pop()
        for chain in layout.chains_of_cell.get(cur, ()):
            if chain.parity not in touched:
                touched.add(chain.parity)
                frontier.append(chain.parity)
    return {c for c in touched if c not in layout.virtual_cells}


def partial_write_cost(layout: CodeLayout, start: int, length: int) -> PartialWriteCost:
    """Cost of writing ``length`` consecutive data blocks from ``start``."""
    data = layout.data_cells
    if not 0 <= start < len(data):
        raise ValueError(f"start {start} outside 0..{len(data) - 1}")
    if not 1 <= length <= len(data) - start:
        raise ValueError(f"length {length} does not fit the stripe from {start}")
    cells = list(data[start : start + length])
    touched = _touched_parities(layout, cells)
    rmw = 2 * length + 2 * len(touched)
    reconstruct = (len(data) - length) + length + layout.num_parity
    return PartialWriteCost(
        layout_name=layout.name,
        start=start,
        length=length,
        parities_touched=len(touched),
        rmw_ios=rmw,
        reconstruct_ios=reconstruct,
    )


def average_partial_write_cost(layout: CodeLayout, length: int) -> float:
    """Mean best-path I/O over every aligned start position."""
    data_count = len(layout.data_cells)
    if not 1 <= length <= data_count:
        raise ValueError(f"length {length} outside 1..{data_count}")
    starts = range(data_count - length + 1)
    total = sum(partial_write_cost(layout, s, length).ios for s in starts)
    return total / len(starts)
