"""Storage efficiency with virtual disks (Section IV-B2, Eq. 6, Fig. 18).

Converting a RAID-5 of ``m`` disks with Code 5-6 requires ``p`` prime;
when ``m + 1`` is not prime, ``v = p - m - 1`` virtual disks are added
and some stripe rows carry no data.  Eq. 6 of the paper gives the
resulting efficiency

    eff = m(m-1) / (m(m+1) + v)

relative to an ideal ``n``-disk MDS RAID-6's ``(n-2)/n``.  We implement
the paper's formula verbatim (it treats the NULL cells that share rows
with virtual parities as reclaimable) and also report the stricter
*physical* efficiency where those cells are counted as lost — useful for
implementations without block remapping.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codes.registry import get_layout
from repro.util.primes import prime_for_disks

__all__ = [
    "EfficiencyPoint",
    "code56_efficiency",
    "mds_raid6_efficiency",
    "efficiency_sweep",
]


@dataclass(frozen=True)
class EfficiencyPoint:
    """Storage efficiency of Code 5-6 hosting a converted m-disk RAID-5."""

    m: int  # source RAID-5 disks
    n: int  # converted RAID-6 disks (m + 1)
    p: int  # prime parameter
    v: int  # virtual disks
    paper_efficiency: float  # Eq. 6
    physical_efficiency: float  # data cells / physical cells (stricter)
    mds_efficiency: float  # ideal (n-2)/n for the same n
    penalty: float  # 1 - paper/mds (Fig. 18's gap, <= 3.8% per the paper)


def mds_raid6_efficiency(n: int) -> float:
    """Ideal MDS RAID-6 efficiency on ``n`` disks."""
    if n < 3:
        raise ValueError("RAID-6 needs >= 3 disks")
    return (n - 2) / n


def code56_efficiency(m: int) -> EfficiencyPoint:
    """Eq. 6 evaluated for a RAID-5 of ``m`` disks, plus the layout truth."""
    if m < 3:
        raise ValueError("need >= 3 source disks")
    p = prime_for_disks(m)
    v = p - m - 1
    n = m + 1
    paper = m * (m - 1) / (m * (m + 1) + v)
    layout = get_layout("code56", p, virtual_cols=tuple(range(v)))
    physical_cells = layout.rows * layout.n_disks
    physical = layout.num_data / physical_cells
    mds = mds_raid6_efficiency(n)
    return EfficiencyPoint(
        m=m,
        n=n,
        p=p,
        v=v,
        paper_efficiency=paper,
        physical_efficiency=physical,
        mds_efficiency=mds,
        penalty=1 - paper / mds,
    )


def efficiency_sweep(m_values: range | list[int]) -> list[EfficiencyPoint]:
    """Fig. 18's sweep over source array widths."""
    return [code56_efficiency(m) for m in m_values]
