"""Speedup matrices (Tables IV and V).

Table IV compares, at equal post-conversion width ``n``, the conversion
time of every other code *under its best approach* against Code 5-6's
direct conversion, with and without load-balancing.  Table V repeats the
comparison with simulated (disk-model) conversion times instead of the
``B * Te`` analysis; the simulated variant lives in
:mod:`repro.workloads`/:mod:`repro.simdisk` and plugs in through the
``time_fn`` hook here.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.analysis.timing import conversion_time
from repro.migration.approaches import alignment_cycle, build_plan, conversions_for_n
from repro.migration.plan import ConversionPlan

__all__ = ["SpeedupCell", "speedup_table", "best_time_for_code"]

TimeFn = Callable[[ConversionPlan], float]


@dataclass(frozen=True)
class SpeedupCell:
    """One entry of Table IV/V."""

    n: int
    code: str
    best_approach: str
    p: int
    code_time: float
    code56_time: float

    @property
    def speedup(self) -> float:
        """How much faster Code 5-6 converts than this code (>= 1 is a win)."""
        return self.code_time / self.code56_time


def best_time_for_code(
    code: str,
    p: int,
    n: int,
    load_balanced: bool,
    time_fn: TimeFn | None = None,
) -> tuple[str, float]:
    """(best approach, its conversion time) for ``code`` at width ``n``."""
    from repro.migration.approaches import _SUPPORTED

    best: tuple[str, float] | None = None
    for approach, codes in _SUPPORTED.items():
        if code not in codes:
            continue
        try:
            groups = alignment_cycle(code, p, n)
            plan = build_plan(code, approach, p, groups=groups, n_disks=n)
        except ValueError:
            continue
        t = time_fn(plan) if time_fn else conversion_time(plan, load_balanced)
        if best is None or t < best[1]:
            best = (approach, t)
    if best is None:
        raise ValueError(f"{code} cannot produce an {n}-disk RAID-6 at p={p}")
    return best


def speedup_table(
    n_values: tuple[int, ...] = (5, 6, 7),
    load_balanced: bool = False,
    time_fn: TimeFn | None = None,
) -> list[SpeedupCell]:
    """Reproduce Table IV (or Table V when ``time_fn`` simulates I/O)."""
    cells: list[SpeedupCell] = []
    for n in n_values:
        candidates = conversions_for_n(n)
        by_code: dict[str, int] = {}
        for code, _approach, p in candidates:
            by_code.setdefault(code, p)
        if "code56" not in by_code:
            continue
        _, base_time = best_time_for_code(
            "code56", by_code["code56"], n, load_balanced, time_fn
        )
        for code, p in sorted(by_code.items()):
            if code == "code56":
                continue
            approach, t = best_time_for_code(code, p, n, load_balanced, time_fn)
            cells.append(
                SpeedupCell(
                    n=n,
                    code=code,
                    best_approach=approach,
                    p=p,
                    code_time=t,
                    code56_time=base_time,
                )
            )
    return cells
