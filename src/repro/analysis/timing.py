"""Conversion-time models (Figs 16-17, Section V-B).

The paper assumes a uniform element access time ``Te`` and ignores
computation time; disks operate in parallel, so within one pass the
makespan is governed by the busiest disk:

* **NLB** (no load balancing — dedicated parity layout): for each phase,
  makespan = max over disks of that disk's I/O count; phases of the
  two-step approaches are sequential whole-array passes, so their
  makespans add.
* **LB** (with load balancing — the dedicated parity role rotates every
  few stripe-groups, as EMC/NetApp RAID-6 implementations do): over a
  full rotation cycle every disk carries the same share, so the per-phase
  makespan tends to ``total I/Os in phase / n``.  We model the ideal
  balanced limit, which matches the paper's "similar to NLB, results for
  conversion time only" treatment.

Both return time in units of ``B * Te``.
"""

from __future__ import annotations

import numpy as np

from repro.migration.plan import ConversionPlan

__all__ = ["conversion_time", "phase_makespans"]


def phase_makespans(plan: ConversionPlan, load_balanced: bool) -> list[float]:
    """Per-phase makespan in units of ``Te`` (not yet normalised by B)."""
    out: list[float] = []
    for phase in plan.phases:
        per_disk = plan.per_disk_ios(phase=phase)
        if not per_disk.any():
            continue
        if load_balanced:
            out.append(float(per_disk.sum()) / plan.n)
        else:
            out.append(float(per_disk.max()))
    return out


def conversion_time(plan: ConversionPlan, load_balanced: bool = False) -> float:
    """Total conversion makespan normalised to ``B * Te``."""
    spans = phase_makespans(plan, load_balanced)
    return float(np.sum(spans)) / plan.data_blocks if plan.data_blocks else 0.0
