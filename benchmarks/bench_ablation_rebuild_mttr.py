"""Ablation - what hybrid recovery actually buys during a rebuild.

Section III-E.4 argues fewer recovery reads shorten MTTR and improve
reliability.  Simulating full rebuilds at scale refines that claim:

* **spindle wall-time is (nearly) unchanged** — the surviving disks
  still rotate over the skipped blocks, so a 25% read reduction does not
  shrink the mechanical makespan (the replacement disk's write stream
  bounds it anyway);
* **the savings are bandwidth and contention**: 25% fewer blocks cross
  the bus and the XOR engine, and each surviving disk serves fewer
  requests — headroom that real systems convert into faster throttled
  rebuilds or better foreground latency (which is how Xiang et al.'s
  measured 12.6% recovery-time gain arises).

Both effects are printed; the assertions encode the refined picture.
"""

from repro.codes import get_layout
from repro.core import plan_generic_hybrid_recovery
from repro.core.chain_decoder import plan_double_column_recovery
from repro.simdisk import get_preset, simulate_closed
from repro.workloads.rebuild import rebuild_trace

MODEL = get_preset("sata-7200")
GROUPS = 20_000
P = 5
COLUMN = 1
BLOCK = 4096


def _measure():
    layout = get_layout("code56", P)
    hybrid = plan_generic_hybrid_recovery(layout, COLUMN)
    conventional = plan_double_column_recovery(layout, COLUMN)
    out = {}
    for name, plan in (("conventional", conventional), ("hybrid", hybrid.plan)):
        trace = rebuild_trace(layout, plan, COLUMN, GROUPS, block_size=BLOCK)
        res = simulate_closed(trace, MODEL)
        out[name] = {
            "makespan_s": res.makespan_s,
            "reads": trace.reads,
            "read_mb": trace.reads * BLOCK / 1e6,
        }
    return out


def bench_ablation_rebuild_mttr(benchmark, show):
    out = benchmark.pedantic(_measure, rounds=1, iterations=1)
    conv, hyb = out["conventional"], out["hybrid"]
    read_saving = 1 - hyb["reads"] / conv["reads"]
    time_delta = hyb["makespan_s"] / conv["makespan_s"] - 1
    lines = [
        f"Rebuild of one Code 5-6 column (p={P}, {GROUPS} groups, 4KB)",
        f"{'strategy':>14} {'makespan':>10} {'reads':>9} {'bytes read':>11}",
        f"{'conventional':>14} {conv['makespan_s']:>9.1f}s {conv['reads']:>9} "
        f"{conv['read_mb']:>9.0f}MB",
        f"{'hybrid':>14} {hyb['makespan_s']:>9.1f}s {hyb['reads']:>9} "
        f"{hyb['read_mb']:>9.0f}MB",
        f"read I/O and bus/XOR bytes saved: {read_saving:.1%}",
        f"mechanical makespan delta: {time_delta:+.1%} "
        "(skipped blocks still rotate under the heads)",
    ]
    show("\n".join(lines))
    assert read_saving >= 0.24  # the Fig. 6 saving at scale
    assert abs(time_delta) <= 0.20  # spindle time is NOT where the win is
