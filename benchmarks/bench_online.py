"""Batched online conversion vs the audited per-parity interleave.

The paper's headline claim is *online* migration speed (Algorithm 2):
the conversion thread fills diagonal parities between application
events.  The per-parity path gathers each chain cell-by-cell through
Python and flushes one journal mark per parity; the batched path
(``repro.migration.batch``) claims a run of pending parities, lowers it
to fused ``RegionOp``s through the kernel tier and group-commits the
marks in one flush.  This bench times both at the paper's scale
(p=13, 4 KiB blocks) and gates the ratio.

Three sections, all landing in ``BENCH_online.json``:

* **quiet throughput** — no application traffic, per kernel backend and
  batch budget; byte/counter identity vs the per-parity oracle is
  asserted inside the timing loop, so a fast-but-wrong run cannot pass.
* **foreground latency** — a deterministic seeded request schedule;
  the deadline-shrunk batch claims exactly the per-parity schedule's
  work per interval, so batched p50/p95/p99 (stall + service) must not
  regress — in fact they are identical, and the bench asserts p99.
* **pair identity** — every supported (code, approach) pair at p=13
  re-checked audited-vs-fused, proving the batched lowering did not
  perturb the shared kernel tier the offline engine rides on.

Two gates, mirroring ``BENCH_kernels.json``:

* **smoke** (always, and what CI enforces): batched >= 3x per-parity.
  Even a 1-cpu numpy-only runner clears this — the per-parity path
  pays a Python round-trip per chain cell, the fused run one vectorised
  reduction per region.
* **full** (>= 10x): asserted only when the host can plausibly deliver
  it (numba importable, >= 8 cores); elsewhere the target is recorded
  in the JSON (``full_target_enforced: false``) rather than silently
  waved through.

Set ``REPRO_BENCH_SMOKE=1`` for the CI-sized run.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.compiled import execute_plan_compiled
from repro.kernels import available_kernels, kernel_info
from repro.migration import (
    build_plan,
    execute_plan,
    prepare_source_array,
    supported_conversions,
)
from repro.migration.online import OnlineCode56Conversion, OnlineRequest

P = 13
BLOCK = 4096
SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
GROUPS = 24 if SMOKE else 96
ROUNDS = 2 if SMOKE else 3
#: budgets per run — one group's row span, eight groups, the whole array
BATCHES = {"rows": P - 1, "8-group": 8 * (P - 1), "array": GROUPS * (P - 1)}
MIN_SPEEDUP_SMOKE = 3.0
MIN_SPEEDUP_FULL = 10.0
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_online.json"


def _host_report() -> dict:
    info = kernel_info()
    return {
        "cpus": os.cpu_count(),
        "kernels_available": available_kernels(),
        "numba_available": bool(info["numba"]["available"]),
    }


def _full_target_enforced(host: dict) -> bool:
    """The 10x bar needs the parallel numba tier and cores to feed it."""
    return not SMOKE and host["numba_available"] and (host["cpus"] or 1) >= 8


def _source(groups: int = GROUPS, seed: int = 0):
    plan = build_plan("code56", "direct", P, groups=groups)
    array, data = prepare_source_array(
        plan, np.random.default_rng(seed), block_size=BLOCK
    )
    return plan, array, data


def _requests(n: int, seed: int = 1) -> list[OnlineRequest]:
    rng = np.random.default_rng(seed)
    capacity = GROUPS * (P - 1) * (P - 2)
    reqs, t = [], 0.0
    for _ in range(n):
        t += float(rng.integers(1, 6))
        is_write = bool(rng.random() < 0.7)
        reqs.append(
            OnlineRequest(
                time=t,
                lba=int(rng.integers(capacity)),
                is_write=is_write,
                payload=(
                    rng.integers(0, 256, size=BLOCK, dtype=np.uint8)
                    if is_write
                    else None
                ),
            )
        )
    return reqs


def _quiet_throughput() -> list[dict]:
    """Per-parity vs batched conversion of an idle array, per backend.

    Baseline rounds are interleaved with batched rounds inside every
    row so host-speed drift between rows cannot skew a ratio; both
    sides run the full production protocol including the journal (one
    mark flush per parity vs one ``mark_many`` per run).
    """
    from repro.faults.journal import OnlineJournal

    _plan, array, _data = _source()
    snapshot = array.snapshot()
    parities = GROUPS * (P - 1)

    def one_round(batch, kernel):
        array.restore(snapshot)
        array.reset_counters()
        journal = OnlineJournal(GROUPS, P - 1)
        conv = OnlineCode56Conversion(
            array, P, journal=journal, batch=batch, kernel=kernel
        )
        t0 = time.perf_counter()
        conv.run([])
        dt = time.perf_counter() - t0
        assert conv.verify()
        return dt, journal.appends

    # oracle bytes/counters from the audited per-parity path
    base_s, base_appends = one_round(1, None)
    oracle = array.snapshot()
    oracle_reads, oracle_writes = array.reads.copy(), array.writes.copy()

    rows = []
    for kernel in available_kernels():
        for name, batch in BATCHES.items():
            label = f"online batch={name} kernel={kernel}"
            best_base, best_fused, appends = base_s, float("inf"), 0
            for _ in range(ROUNDS):
                fused_s, appends = one_round(batch, kernel)
                assert np.array_equal(array.snapshot(), oracle), f"{label}: bytes differ"
                assert np.array_equal(array.reads, oracle_reads), f"{label}: reads differ"
                assert np.array_equal(array.writes, oracle_writes), f"{label}: writes differ"
                best_fused = min(best_fused, fused_s)
                interleaved, _ = one_round(1, None)
                best_base = min(best_base, interleaved)
            rows.append(
                {
                    "kernel": kernel,
                    "batch": name,
                    "batch_budget": batch,
                    "parities": parities,
                    "per_parity_s": round(best_base, 4),
                    "batched_s": round(best_fused, 4),
                    "per_parity_parities_per_s": round(parities / best_base, 1),
                    "batched_parities_per_s": round(parities / best_fused, 1),
                    "per_parity_journal_appends": base_appends,
                    "batched_journal_appends": appends,
                    "speedup": round(best_base / best_fused, 2),
                    "byte_identical": True,
                    "counter_identical": True,
                }
            )
    return rows


def _foreground_latency() -> dict:
    """Foreground (stall + service) percentiles under live traffic."""
    n = 64 if SMOKE else 256
    reqs = _requests(n)

    def percentiles(batch):
        _plan, array, _data = _source()
        report = OnlineCode56Conversion(array, P, batch=batch).run(reqs)
        fg = np.asarray(report.request_stalls) + np.asarray(
            report.request_latencies
        )
        return {
            "p50": float(np.percentile(fg, 50)),
            "p95": float(np.percentile(fg, 95)),
            "p99": float(np.percentile(fg, 99)),
            "runs_committed": report.runs_committed,
            "batch_shrinks": report.batch_shrinks,
        }

    base = percentiles(1)
    batched = percentiles(BATCHES["array"])
    assert batched["p99"] <= base["p99"], (
        f"batched foreground p99 {batched['p99']} regressed "
        f"per-parity {base['p99']}"
    )
    return {"requests": n, "per_parity": base, "batched": batched}


def _pair_identity() -> list[dict]:
    """Audited vs fused bytes for every supported (code, approach) pair.

    The batched online lowering shares the kernel tier with the offline
    compiled engine; this re-proves nothing drifted for the other 10
    pairs the online converter itself cannot run.
    """
    rows = []
    for code, approach in supported_conversions():
        plan = build_plan(code, approach, P, groups=2)
        audited, data = prepare_source_array(
            plan, np.random.default_rng(2), block_size=512
        )
        fused, _ = prepare_source_array(
            plan, np.random.default_rng(2), block_size=512
        )
        execute_plan(plan, audited, data)
        execute_plan_compiled(plan, fused, data)
        ok = bool(
            np.array_equal(audited.snapshot(), fused.snapshot())
            and np.array_equal(audited.reads, fused.reads)
            and np.array_equal(audited.writes, fused.writes)
        )
        assert ok, f"{code}/{approach}: fused bytes drifted from audited"
        rows.append({"code": code, "approach": approach, "byte_identical": ok})
    return rows


def _run() -> dict:
    host = _host_report()
    return {
        "meta": {
            "p": P,
            "block_size": BLOCK,
            "groups": GROUPS,
            "batches": BATCHES,
            "smoke": SMOKE,
            "host": host,
            "min_speedup_smoke": MIN_SPEEDUP_SMOKE,
            "min_speedup_full": MIN_SPEEDUP_FULL,
            "full_target_enforced": _full_target_enforced(host),
            "full_target_note": (
                "the 10x bar applies to multi-core hosts running the "
                "parallel numba tier; the 3x floor is portable — the "
                "per-parity path pays a Python round-trip per chain "
                "cell, the fused run one vectorised reduction"
            ),
        },
        "throughput": _quiet_throughput(),
        "foreground": _foreground_latency(),
        "pair_identity": _pair_identity(),
    }


def bench_online(benchmark, show):
    report = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = report["throughput"]
    best = max(r["speedup"] for r in rows)
    worst_array = min(r["speedup"] for r in rows if r["batch"] == "array")
    report["summary"] = {
        "best_speedup": best,
        "worst_whole_array_speedup": worst_array,
        "foreground_p99_per_parity": report["foreground"]["per_parity"]["p99"],
        "foreground_p99_batched": report["foreground"]["batched"]["p99"],
        "pairs_byte_identical": all(
            r["byte_identical"] for r in report["pair_identity"]
        ),
    }
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    meta = report["meta"]
    lines = [
        f"batched online conversion vs per-parity, p={P} bs={BLOCK} "
        f"g={meta['groups']} (BENCH_online.json; smoke={meta['smoke']}, "
        f"host={meta['host']['cpus']} cpu(s), "
        f"numba={'yes' if meta['host']['numba_available'] else 'no'})"
    ]
    for r in rows:
        lines.append(
            f"batch={r['batch']:>5} [{r['kernel']:>5}]: "
            f"{r['per_parity_parities_per_s']:>8,.0f} -> "
            f"{r['batched_parities_per_s']:>10,.0f} parities/s  "
            f"({r['speedup']:.2f}x)"
        )
    fg = report["foreground"]
    lines.append(
        f"foreground p50/p95/p99: per-parity "
        f"{fg['per_parity']['p50']:.0f}/{fg['per_parity']['p95']:.0f}/"
        f"{fg['per_parity']['p99']:.0f} ticks, batched "
        f"{fg['batched']['p50']:.0f}/{fg['batched']['p95']:.0f}/"
        f"{fg['batched']['p99']:.0f} ticks "
        f"({fg['batched']['runs_committed']} runs, "
        f"{fg['batched']['batch_shrinks']} shrinks)"
    )
    lines.append(
        f"{len(report['pair_identity'])} (code, approach) pairs "
        f"byte-identical; best speedup {best}x"
    )
    show("\n".join(lines))

    assert worst_array >= MIN_SPEEDUP_SMOKE, (
        f"whole-array batched speedup {worst_array}x < portable floor "
        f"{MIN_SPEEDUP_SMOKE}x"
    )
    if meta["full_target_enforced"]:
        assert best >= MIN_SPEEDUP_FULL, (
            f"batched speedup {best}x < full target {MIN_SPEEDUP_FULL}x"
        )
