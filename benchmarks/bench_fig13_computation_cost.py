"""Figure 13 - computation cost (XORs, fraction of B).

XOR operations of the conversion normalised to B XORs.  Zero-valued
(NULL/virtual) chain members are skipped and the EVENODD adjuster is
computed once, as a real controller would.

Regenerates the figure's series for p in {5, 7, 11, 13} from
block-accurate (engine-verified) conversion plans.
"""

from conftest import compute_metric_series, render_series


def bench_fig13_computation_cost(benchmark, show):
    rows = benchmark(compute_metric_series, "computation_cost")
    assert rows, "no series produced"
    show(render_series("Figure 13 - computation cost (XORs, fraction of B)", rows))
    # Code 5-6's series must be minimal in every column of this figure
    code56 = next(vals for key, vals in rows if "code56" in key)
    for key, vals in rows:
        for ours, theirs in zip(code56, vals):
            assert ours <= theirs + 1e-9, (key, ours, theirs)
