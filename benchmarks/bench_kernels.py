"""Fused kernel backends vs the stripe-tensor compiled engine.

Every supported (code, approach) pair at p=13 runs the same compiled
program three ways — the stripe-tensor path (``use_fused=False``, the
pre-kernel engine), the fused region-op path under every available
:class:`~repro.kernels.base.XorKernel` backend, and the audited
per-block engine as the byte/counter oracle.  Results must be
byte-identical with identical per-disk counters everywhere; the fused
path must clear the speedup gate over the stripe-tensor baseline at
block sizes of 4 KiB and up.

Two gates, because the honest ceiling depends on the host:

* **smoke** (always, and what CI enforces): the median fused speedup
  across pairs AND the paper's headline Code 5-6 pairs must each clear
  2x.  On a single-core numpy-only container both paths are memory-
  bandwidth-bound; fused wins only the ~3x fewer bytes it moves, so 2x
  is the portable floor.  Overhead-bound micro pairs (pcode converts
  almost no parity at p=13, the whole run is ~15 ms) can dip below it
  and are recorded per-pair rather than gated.
* **full** (``min_speedup_full = 10x``, headline pairs): asserted only
  when the host can plausibly deliver it — the numba tier importable
  and several cores for its parallel reduction.  Elsewhere the target
  is recorded in the JSON (``full_target_enforced: false`` plus the
  host report) rather than silently waved through.

Machine-readable output lands in ``BENCH_kernels.json`` at the repo
root; set ``REPRO_BENCH_SMOKE=1`` for the CI-sized run (one block size,
fewer timing rounds).
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.compiled import compile_plan, execute_plan_compiled
from repro.kernels import available_kernels, kernel_info
from repro.migration import (
    build_plan,
    execute_plan,
    prepare_source_array,
    supported_conversions,
)
from repro.migration.approaches import alignment_cycle
from repro.obs.metrics import MetricsRegistry, set_registry

P = 13
SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
#: groups per block size — large batches at 4 KiB amortise phase
#: overhead; 64 KiB blocks shrink the batch to bound the array size
GROUPS_TARGET = {4096: 96} if SMOKE else {4096: 96, 65536: 12}
ROUNDS = 2 if SMOKE else 3
MIN_SPEEDUP_SMOKE = 2.0
MIN_SPEEDUP_FULL = 10.0
#: the paper's code — both rotations must clear every gate
HEADLINE_CODES = ("code56", "code56-right")
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"


def _host_report() -> dict:
    info = kernel_info()
    return {
        "cpus": os.cpu_count(),
        "kernels_available": available_kernels(),
        "numba_available": bool(info["numba"]["available"]),
    }


def _full_target_enforced(host: dict) -> bool:
    """The 10x bar needs the parallel numba tier and cores to feed it."""
    return not SMOKE and host["numba_available"] and (host["cpus"] or 1) >= 8


def _groups_for(code: str, approach: str, target: int) -> int:
    plan = build_plan(code, approach, P, groups=1)
    cycle = alignment_cycle(code, P, plan.n)
    return cycle * max(1, -(-target // cycle))


def _time_config(code: str, approach: str, block_size: int) -> list[dict]:
    groups = _groups_for(code, approach, GROUPS_TARGET[block_size])
    plan = build_plan(code, approach, P, groups=groups)
    array, data = prepare_source_array(
        plan, np.random.default_rng(0), block_size=block_size
    )
    snapshot = array.snapshot()

    # oracle: the audited per-block engine
    execute_plan(plan, array, data)
    expect = array.snapshot()
    expect_reads, expect_writes = array.reads.copy(), array.writes.copy()

    program = compile_plan(plan)

    def best_of(kernel, use_fused):
        t_best = float("inf")
        for _ in range(ROUNDS):
            array.restore(snapshot)
            t0 = time.perf_counter()
            execute_plan_compiled(
                plan, array, data, program=program, kernel=kernel, use_fused=use_fused
            )
            t_best = min(t_best, time.perf_counter() - t0)
        label = f"{code}/{approach}@bs={block_size}" + (
            f" kernel={kernel}" if use_fused else " stripe"
        )
        assert np.array_equal(array.snapshot(), expect), f"{label}: bytes differ"
        assert np.array_equal(array.reads, expect_reads), f"{label}: reads differ"
        assert np.array_equal(array.writes, expect_writes), f"{label}: writes differ"
        return t_best

    stripe_s = best_of(None, use_fused=False)
    rows = []
    for kernel in available_kernels():
        fused_s = best_of(kernel, use_fused=True)
        rows.append(
            {
                "code": code,
                "approach": approach,
                "block_size": block_size,
                "groups": groups,
                "data_blocks": plan.data_blocks,
                "kernel": kernel,
                "stripe_s": round(stripe_s, 4),
                "fused_s": round(fused_s, 4),
                "stripe_blocks_per_s": round(plan.data_blocks / stripe_s, 1),
                "fused_blocks_per_s": round(plan.data_blocks / fused_s, 1),
                "speedup": round(stripe_s / fused_s, 2),
                "byte_identical": True,
                "counter_identical": True,
            }
        )
    return rows


def _obs_drift_check() -> dict:
    """Fused run with live metrics: kernel counters recorded, zero I/O drift."""
    plan = build_plan("code56", "direct", P, groups=_groups_for("code56", "direct", 24))
    audited, data = prepare_source_array(plan, np.random.default_rng(1), block_size=4096)
    fused, _ = prepare_source_array(plan, np.random.default_rng(1), block_size=4096)
    execute_plan(plan, audited, data)
    registry = MetricsRegistry(enabled=True)
    prev = set_registry(registry)
    try:
        execute_plan_compiled(plan, fused, data)
    finally:
        set_registry(prev)
    assert np.array_equal(audited.reads, fused.reads), "obs bridge drifted reads"
    assert np.array_equal(audited.writes, fused.writes), "obs bridge drifted writes"
    counters = {
        m["name"]: m["value"]
        for m in registry.snapshot()["counters"]
        if m["name"].startswith("kernels.")
    }
    assert counters.get("kernels.fused_phases", 0) > 0
    assert counters.get("kernels.xor_bytes", 0) > 0
    return {"counters": counters, "io_drift": 0}


def _run() -> dict:
    host = _host_report()
    results = []
    for block_size in sorted(GROUPS_TARGET):
        for code, approach in supported_conversions():
            results.extend(_time_config(code, approach, block_size))
    return {
        "meta": {
            "p": P,
            "block_sizes": sorted(GROUPS_TARGET),
            "groups_target": GROUPS_TARGET,
            "smoke": SMOKE,
            "host": host,
            "min_speedup_smoke": MIN_SPEEDUP_SMOKE,
            "min_speedup_full": MIN_SPEEDUP_FULL,
            "headline_codes": list(HEADLINE_CODES),
            "full_target_enforced": _full_target_enforced(host),
            "full_target_note": (
                "the 10x bar applies to bare-metal multi-core hosts running "
                "the parallel numba tier; single-core numpy-only hosts are "
                "memory-bandwidth-bound on both paths, so only the portable "
                "2x floor is asserted there"
            ),
        },
        "results": results,
        "obs_bridge": _obs_drift_check(),
    }


def bench_kernels(benchmark, show):
    report = benchmark.pedantic(_run, rounds=1, iterations=1)
    big = [r for r in report["results"] if r["block_size"] >= 4096]
    headline = [r for r in big if r["code"] in HEADLINE_CODES]
    report["summary"] = {
        "median_speedup": round(float(np.median([r["speedup"] for r in big])), 2),
        "worst_headline_speedup": min(r["speedup"] for r in headline),
        "best_headline_speedup": max(r["speedup"] for r in headline),
    }
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    meta = report["meta"]
    lines = [
        f"fused kernels vs stripe-tensor engine, p={P} "
        f"(BENCH_kernels.json; smoke={meta['smoke']}, "
        f"host={meta['host']['cpus']} cpu(s), "
        f"numba={'yes' if meta['host']['numba_available'] else 'no'})"
    ]
    for r in report["results"]:
        lines.append(
            f"{r['approach']:>10}({r['code']:<13}) bs={r['block_size']:>5} "
            f"g={r['groups']:>4} [{r['kernel']}]: "
            f"{r['stripe_blocks_per_s']:>10,.0f} -> "
            f"{r['fused_blocks_per_s']:>12,.0f} blk/s  ({r['speedup']:.2f}x)"
        )
    summary = report["summary"]
    lines.append(
        f"median {summary['median_speedup']}x; Code 5-6 "
        f"{summary['worst_headline_speedup']}x..{summary['best_headline_speedup']}x"
    )
    show("\n".join(lines))

    median = summary["median_speedup"]
    assert median >= MIN_SPEEDUP_SMOKE, (
        f"median fused speedup {median}x < portable floor {MIN_SPEEDUP_SMOKE}x"
    )
    worst_headline = summary["worst_headline_speedup"]
    assert worst_headline >= MIN_SPEEDUP_SMOKE, (
        f"headline Code 5-6 speedup {worst_headline}x < floor {MIN_SPEEDUP_SMOKE}x"
    )
    if meta["full_target_enforced"]:
        best_per_pair = {}
        for r in headline:
            key = (r["code"], r["approach"])
            best_per_pair[key] = max(best_per_pair.get(key, 0.0), r["speedup"])
        worst_full = min(best_per_pair.values())
        assert worst_full >= MIN_SPEEDUP_FULL, (
            f"headline fused speedup {worst_full}x < full target {MIN_SPEEDUP_FULL}x"
        )
