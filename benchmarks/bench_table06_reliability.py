"""Table VI - reliability of the conversion approaches.

The paper's qualitative classes (Low / Medium / High), backed here by a
quantified data-loss probability for the conversion window: each
approach's simulated window length (B = 0.6M, 4KB) is fed into the
transient Markov model at the year-3 AFR peak.
"""

from conftest import paper_configurations

from repro.analysis import AFR_BY_AGE, conversion_window_risk
from repro.simdisk import get_preset, simulate_closed
from repro.workloads import conversion_trace

MODEL = get_preset("sata-7200")
TOTAL_BLOCKS = 600_000
AFR = AFR_BY_AGE[3]


def _risks(p: int = 5):
    rows = []
    for m, plan in paper_configurations(p):
        trace = conversion_trace(plan, total_data_blocks=TOTAL_BLOCKS, block_size=4096)
        hours = simulate_closed(trace, MODEL).makespan_ms / 3.6e6
        risk = conversion_window_risk(m.approach, m.code, plan.n, hours, AFR)
        rows.append((f"{m.approach}({m.code})", risk))
    return rows


def bench_table06_reliability(benchmark, show):
    rows = benchmark.pedantic(_risks, rounds=1, iterations=1)
    lines = [
        f"Table VI - conversion-window reliability (year-3 AFR {AFR:.1%}, B=0.6M)",
        f"{'conversion':>36} {'class':>7} {'tol':>4} {'window':>8} {'P(loss)':>10}",
    ]
    for label, r in sorted(rows, key=lambda x: -x[1].loss_probability):
        lines.append(
            f"{label:>36} {r.reliability_class:>7} {r.tolerance_during_window:>4} "
            f"{r.window_hours:>7.2f}h {r.loss_probability:>10.2e}"
        )
    show("\n".join(lines))
    by = dict(rows)
    # the paper's ordering: RAID-0 window Low, RAID-4 Medium, direct High
    assert by["via-raid0(rdp)"].reliability_class == "Low"
    assert by["via-raid4(rdp)"].reliability_class == "Medium"
    assert by["direct(code56)"].reliability_class == "High"
    assert (
        by["via-raid0(rdp)"].loss_probability
        > 10 * by["direct(code56)"].loss_probability
    )
