"""Ablation - audited per-block engine vs vectorised bulk conversion.

The plan engine performs (and counts) every block I/O individually so
the result can be audited against the paper's accounting; a production
converter streams extents.  This bench measures the Python-level cost of
that auditability: the vectorised Code 5-6 converter produces the
byte-identical array orders of magnitude faster by folding each diagonal
chain into one batched XOR over all stripe-groups (the HPC guide's
vectorise-the-loop rule applied to the hot path).
"""

import numpy as np

from repro.migration import build_plan, execute_plan, prepare_source_array
from repro.migration.fast import fast_convert_code56

P = 7
GROUPS = 60
BLOCK = 512


def _source():
    plan = build_plan("code56", "direct", P, groups=GROUPS)
    array, data = prepare_source_array(plan, np.random.default_rng(0), block_size=BLOCK)
    return plan, array, data


def bench_engine_per_block(benchmark):
    plan, array, data = _source()
    snapshot = array.snapshot()

    def run():
        array._store[...] = snapshot
        array.reset_counters()
        execute_plan(plan, array, data)

    benchmark(run)
    assert array.total_writes == GROUPS * (P - 1)


def bench_engine_vectorised(benchmark):
    plan, array, data = _source()
    snapshot = array.snapshot()

    def run():
        array._store[...] = snapshot
        array.reset_counters()
        fast_convert_code56(array, P, groups=GROUPS)

    benchmark(run)
    assert array.total_writes == GROUPS * (P - 1)


def bench_vectorised_at_scale(benchmark, show):
    """The fast path at a million-block scale (pure conversion math)."""
    p, groups, bs = 7, 5000, 512  # 5000 groups * 30 data blocks = 150k blocks
    plan = build_plan("code56", "direct", p, groups=1)
    from repro.raid import BlockArray

    array = BlockArray(p, groups * (p - 1), block_size=bs)
    rng = np.random.default_rng(1)
    array._store[: p - 1] = rng.integers(
        0, 256, size=array._store[: p - 1].shape, dtype=np.uint8
    )

    def run():
        array.reset_counters()
        return fast_convert_code56(array, p, groups=groups)

    written = benchmark(run)
    data_mb = groups * (p - 1) * (p - 2) * bs / 1e6
    show(
        f"vectorised Code 5-6 conversion: {data_mb:.0f}MB of data, "
        f"{written} parities per round"
    )
