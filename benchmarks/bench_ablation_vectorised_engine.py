"""Ablation - audited per-block engine vs vectorised bulk conversion.

The plan engine performs (and counts) every block I/O individually so
the result can be audited against the paper's accounting; a production
converter streams extents.  This bench measures the Python-level cost of
that auditability three ways: the audited engine, the batched online
converter run quiet with a whole-array run budget (the hand-fused
Code 5-6 lowering, ``repro.migration.batch``), and the general compiled
executor (``repro.compiled``) that batches *any* supported conversion.
All three produce byte-identical arrays (tested in
``tests/test_migration_batch.py`` / ``tests/test_compiled_engine.py``).
"""

import numpy as np

from repro.compiled import compile_plan, execute_plan_compiled
from repro.migration import build_plan, execute_plan, prepare_source_array
from repro.migration.online import OnlineCode56Conversion

P = 7
GROUPS = 60
BLOCK = 512

def _source():
    plan = build_plan("code56", "direct", P, groups=GROUPS)
    array, data = prepare_source_array(plan, np.random.default_rng(0), block_size=BLOCK)
    return plan, array, data


def bench_engine_per_block(benchmark):
    plan, array, data = _source()
    snapshot = array.snapshot()

    def run():
        array.restore(snapshot)
        array.reset_counters()
        execute_plan(plan, array, data)

    benchmark(run)
    assert array.total_writes == GROUPS * (P - 1)


def bench_engine_vectorised(benchmark):
    plan, array, data = _source()
    snapshot = array.snapshot()
    whole_array = GROUPS * (P - 1)  # one fused run covers every parity

    def run():
        array.restore(snapshot)
        array.reset_counters()
        OnlineCode56Conversion(array, P, batch=whole_array).run([])

    benchmark(run)
    assert array.total_writes == GROUPS * (P - 1)


def bench_engine_compiled(benchmark):
    plan, array, data = _source()
    snapshot = array.snapshot()
    program = compile_plan(plan)  # compile once; the cache does this anyway

    def run():
        array.restore(snapshot)
        execute_plan_compiled(plan, array, data, program=program)

    benchmark(run)
    assert array.total_writes == GROUPS * (P - 1)


def bench_vectorised_at_scale(benchmark, show):
    """The fused run lowering at a million-block scale (pure conversion math)."""
    p, groups, bs = 7, 5000, 512  # 5000 groups * 30 data blocks = 150k blocks
    from repro.kernels import resolve_kernel
    from repro.migration.batch import execute_run_fused
    from repro.raid import BlockArray

    array = BlockArray(p, groups * (p - 1), block_size=bs)
    region = array.bulk_view(slice(0, p - 1), slice(0, array.blocks_per_disk))
    rng = np.random.default_rng(1)
    region[...] = rng.integers(0, 256, size=region.shape, dtype=np.uint8)
    run_all = tuple((g, r) for g in range(groups) for r in range(p - 1))
    kernel = resolve_kernel(None)

    def run():
        array.reset_counters()
        execute_run_fused(array, p, run_all, kernel)
        return len(run_all)

    written = benchmark(run)
    data_mb = groups * (p - 1) * (p - 2) * bs / 1e6
    show(
        f"vectorised Code 5-6 conversion: {data_mb:.0f}MB of data, "
        f"{written} parities per round"
    )
