"""Table I - failure statistics by drive age, and their MTTDL consequence.

Reprints the embedded AFR/ARR data and derives the motivating numbers:
the MTTDL of an aging 6-disk RAID-5 versus the RAID-6 it can become —
the paper's case for migrating at all.
"""

from repro.analysis import AFR_BY_AGE, ARR_BY_AGE, afr_to_lambda, mttdl_raid5, mttdl_raid6

HOURS_PER_YEAR = 8766.0


def _table():
    mu = 1 / 24.0
    rows = []
    for age in sorted(AFR_BY_AGE):
        afr = AFR_BY_AGE[age]
        lam = afr_to_lambda(afr)
        r5 = mttdl_raid5(6, lam, mu) / HOURS_PER_YEAR
        r6 = mttdl_raid6(7, lam, mu) / HOURS_PER_YEAR
        rows.append((age, afr, ARR_BY_AGE[age], r5, r6))
    return rows


def bench_table01_failure_rates(benchmark, show):
    rows = benchmark(_table)
    lines = [
        "Table I - AFR/ARR by age, with derived MTTDL (24h repair)",
        f"{'age':>4} {'AFR':>7} {'ARR':>7} {'RAID-5 MTTDL':>14} {'RAID-6 MTTDL':>14}",
    ]
    for age, afr, arr, r5, r6 in rows:
        lines.append(f"{age:>4} {afr:>7.1%} {arr:>7.1%} {r5:>12.0f}yr {r6:>12.0f}yr")
    show("\n".join(lines))
    # the motivation: AFR spikes after year 1, RAID-6 buys orders of magnitude
    assert rows[1][1] > 3 * rows[0][1]
    assert all(r6 > 50 * r5 for _, _, _, r5, r6 in rows)
