"""Figure 15 - total I/Os (fraction of B).

Reads + writes normalised to B.  Code 5-6 converts in (p-1)/(p-2) x B
I/Os; the paper's 48.5% total-I/O reduction shows against the worst
two-step conversions.

Regenerates the figure's series for p in {5, 7, 11, 13} from
block-accurate (engine-verified) conversion plans.
"""

from conftest import compute_metric_series, render_series


def bench_fig15_total_ios(benchmark, show):
    rows = benchmark(compute_metric_series, "total_ios")
    assert rows, "no series produced"
    show(render_series("Figure 15 - total I/Os (fraction of B)", rows))
    # Code 5-6's series must be minimal in every column of this figure
    code56 = next(vals for key, vals in rows if "code56" in key)
    for key, vals in rows:
        for ours, theirs in zip(code56, vals):
            assert ours <= theirs + 1e-9, (key, ours, theirs)
