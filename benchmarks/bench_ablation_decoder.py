"""Ablation - Algorithm 1's chain decoding vs the generic GF(2) decoder.

DESIGN.md keeps two decoders: the generic solver (works on any layout,
expresses each lost cell directly in surviving cells) and the paper's
two-chain walk (sequential, reuses recovered cells).  This bench
quantifies the design choice: the chain plans hit the optimal p-3 XORs
per lost element, while the direct expressions cost more; planning time
is also compared.
"""

import itertools

from repro.codes import build_recovery_plan, code56_layout
from repro.core.chain_decoder import plan_double_column_recovery

PRIMES = (5, 7, 11, 13)


def _xor_comparison():
    rows = []
    for p in PRIMES:
        lay = code56_layout(p)
        chain_x, generic_x = 0, 0
        pairs = 0
        for f1, f2 in itertools.combinations(range(p), 2):
            chain = plan_double_column_recovery(lay, f1, f2)
            lost = tuple((r, c) for c in (f1, f2) for r in range(p - 1))
            generic = build_recovery_plan(lay, lost)
            chain_x += chain.total_xors
            generic_x += generic.total_xors
            pairs += 1
        lost_cells = 2 * (p - 1)
        rows.append(
            (p, chain_x / pairs / lost_cells, generic_x / pairs / lost_cells)
        )
    return rows


def bench_ablation_chain_vs_generic_xors(benchmark, show):
    rows = benchmark(_xor_comparison)
    lines = [
        "Ablation - XORs per recovered element, double-column failures",
        f"{'p':>4} {'chain (Alg.1)':>14} {'generic GF(2)':>14} {'optimal p-3':>12}",
    ]
    for p, chain, generic in rows:
        lines.append(f"{p:>4} {chain:>14.2f} {generic:>14.2f} {p - 3:>12}")
    show("\n".join(lines))
    for p, chain, generic in rows:
        assert chain == p - 3  # Algorithm 1 is XOR-optimal
        assert generic >= chain  # the generic decoder never beats it


def bench_ablation_chain_planning_speed(benchmark):
    lay = code56_layout(13)
    pairs = list(itertools.combinations(range(13), 2))

    def plan_all():
        return [plan_double_column_recovery(lay, f1, f2) for f1, f2 in pairs]

    plans = benchmark(plan_all)
    assert len(plans) == len(pairs)


def bench_ablation_generic_planning_speed(benchmark):
    lay = code56_layout(13)
    pairs = list(itertools.combinations(range(13), 2))

    def plan_all():
        out = []
        for f1, f2 in pairs:
            lost = tuple((r, c) for c in (f1, f2) for r in range(12))
            out.append(build_recovery_plan(lay, lost))
        return out

    plans = benchmark(plan_all)
    assert len(plans) == len(pairs)
