"""Figure 9 - invalid parity ratio (fraction of B).

Invalid parity blocks set to NULL during conversion, normalised by B.
Two-step RAID-0 conversions and the vertical in-place codes invalidate
the old rotating parities; Code 5-6 reuses them as its horizontal
parities, so its ratio is identically zero (a 100% reduction).

Regenerates the figure's series for p in {5, 7, 11, 13} from
block-accurate (engine-verified) conversion plans.
"""

from conftest import compute_metric_series, render_series


def bench_fig09_invalid_parity(benchmark, show):
    rows = benchmark(compute_metric_series, "invalid_parity_ratio")
    assert rows, "no series produced"
    show(render_series("Figure 9 - invalid parity ratio (fraction of B)", rows))
    # Code 5-6's series must be minimal in every column of this figure
    code56 = next(vals for key, vals in rows if "code56" in key)
    for key, vals in rows:
        for ours, theirs in zip(code56, vals):
            assert ours <= theirs + 1e-9, (key, ours, theirs)
