"""Shared machinery for the per-figure/table benchmarks.

Each ``bench_*`` module regenerates one table or figure of the paper's
Section V: the benchmarked callable produces the figure's data series,
and the rows are printed in the paper's layout so the output can be read
against the publication (EXPERIMENTS.md records the comparison).
"""

from __future__ import annotations

import pytest

from repro.analysis import metrics_from_plan
from repro.analysis.costmodel import comparison_width
from repro.migration import build_plan, supported_conversions
from repro.migration.approaches import alignment_cycle

#: the primes the paper's bar charts sweep ("with increasing number of disks")
FIGURE_PRIMES = (5, 7, 11, 13)


def paper_configurations(p: int):
    """Every (code, approach) series of Figs 9-17 at prime ``p``.

    Returns ``[(metrics, plan)]`` with plans built over one alignment
    cycle (exact per-B ratios).
    """
    out = []
    for code, approach in supported_conversions():
        if code == "code56-right":
            continue  # mirror of code56; identical costs, not a paper series
        n = comparison_width(code, p)
        plan = build_plan(
            code, approach, p, groups=alignment_cycle(code, p, n), n_disks=n
        )
        out.append((metrics_from_plan(plan), plan))
    return out


def compute_metric_series(metric: str) -> list:
    """One ratio figure's data across FIGURE_PRIMES: [(label, values)]."""
    series: dict[str, list[float]] = {}
    for p in FIGURE_PRIMES:
        for m, _plan in paper_configurations(p):
            key = f"{m.approach}({m.code})"
            series.setdefault(key, [float("nan")] * len(FIGURE_PRIMES))
            series[key][FIGURE_PRIMES.index(p)] = getattr(m, metric)
    return sorted(series.items())


def render_series(title: str, rows: list, fmt: str = "{:8.3f}") -> str:
    lines = [
        title,
        f"{'conversion':>44} " + " ".join(f"p={p:>2}    " for p in FIGURE_PRIMES),
    ]
    for key, vals in rows:
        lines.append(f"{key:>44} " + " ".join(fmt.format(v) for v in vals))
    return "\n".join(lines)


@pytest.fixture
def show(capsys):
    """Print once through pytest's capture (so -s is not required)."""

    def _show(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _show
