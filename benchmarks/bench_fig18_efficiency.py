"""Figure 18 - storage efficiency of Code 5-6 vs an ideal MDS RAID-6.

Sweeps the source RAID-5 width m; when m+1 is not prime, virtual disks
(Eq. 6) cost a small efficiency penalty.  The paper reports the penalty
as < 3.8%; our sweep reproduces that bound whenever at most one virtual
disk is needed and records the larger prime-gap cases (worst 5.1% at
m = 7) in EXPERIMENTS.md.
"""

from repro.analysis import efficiency_sweep

M_VALUES = list(range(3, 31))


def bench_fig18_efficiency(benchmark, show):
    points = benchmark(efficiency_sweep, M_VALUES)
    lines = [
        "Figure 18 - storage efficiency (Code 5-6 with virtual disks vs MDS RAID-6)",
        f"{'m':>4} {'p':>4} {'v':>3} {'Code 5-6 (Eq.6)':>16} {'MDS (n-2)/n':>12} {'penalty':>8}",
    ]
    for e in points:
        lines.append(
            f"{e.m:>4} {e.p:>4} {e.v:>3} {e.paper_efficiency:>16.4f} "
            f"{e.mds_efficiency:>12.4f} {e.penalty:>7.2%}"
        )
    show("\n".join(lines))
    assert all(e.penalty >= -1e-12 for e in points)
    exact = [e for e in points if e.v == 0]
    assert exact and all(abs(e.penalty) < 1e-12 for e in exact)
    one_virtual = [e for e in points if e.v == 1 and e.m >= 5]
    assert all(e.penalty <= 0.038 for e in one_virtual)
