"""Fleet service under load: acceptance gates, determinism, throughput.

The self-healing fleet (``repro.fleet``) migrates many Code 5-6 volumes
concurrently while serving foreground traffic, rebuilding failed disks
from hot spares and pausing conversion whenever a tenant's QoS breaker
trips.  This bench runs the ISSUE acceptance configuration — 100
volumes (16 under ``REPRO_BENCH_SMOKE``), mid-migration disk failures
injected on three of them — and lands three sections in
``BENCH_fleet.json``:

* **acceptance** — the full faulted fleet; every report gate
  (``all_terminal``, ``zero_divergence``, ``qos_ok``, ``no_errors``)
  is asserted inside the timed run, so a fast-but-wrong fleet cannot
  pass, and every injected failure must complete through spare rebuild.
* **determinism** — the same config re-run with a different client-pool
  width; per-volume results are tick-domain deterministic, so the two
  reports must agree volume-for-volume on state, bytes, latency and
  recovery counters regardless of OS scheduling.
* **throughput** — volumes drained per wall-clock second at each pool
  width, plus the worst closed-breaker p99 per tenant against its
  target (the number the QoS gate scores).

Set ``REPRO_BENCH_SMOKE=1`` for the CI-sized run.
"""

import json
import os
import time
from pathlib import Path

from repro.fleet import FleetConfig, FleetService

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
VOLUMES = 16 if SMOKE else 100
REQUESTS = 12 if SMOKE else 16
FAIL_VOLUMES = (3, 7, 11) if SMOKE else (7, 23, 61)
CLIENTS = 8
SPARES = 4
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"

#: the result keys that must be bit-stable across client-pool widths —
#: everything except wall-clock, which legitimately varies
_DETERMINISTIC_KEYS = (
    "state", "transitions", "requests_served", "writes_applied",
    "parities_generated", "conversion_ticks", "finish_tick", "crashes",
    "resumes", "rebuilds_completed", "degraded_reads", "verified",
    "divergent_blocks", "latency", "breaker", "qos_p99_ticks",
)


def _config(clients: int = CLIENTS) -> FleetConfig:
    return FleetConfig(
        volumes=VOLUMES,
        clients=clients,
        spares=SPARES,
        seed=2026,
        requests_per_volume=REQUESTS,
        batch=4,
        fail_volumes=FAIL_VOLUMES,
        fail_disk=1,
    )


def _gated_run(clients: int) -> tuple[dict, float]:
    """One timed fleet run with every acceptance gate asserted."""
    t0 = time.perf_counter()
    report = FleetService(_config(clients)).run()
    elapsed = time.perf_counter() - t0
    assert report["ok"], {
        "gates": report["gates"],
        "errors": report["errors"],
        "qos_violations": report["qos_violations"],
    }
    assert report["divergent_blocks"] == 0
    assert report["volumes_complete"] == VOLUMES, report["states"]
    assert report["rebuilds_completed"] >= len(FAIL_VOLUMES), (
        f"only {report['rebuilds_completed']} spare rebuilds for "
        f"{len(FAIL_VOLUMES)} injected failures"
    )
    for vid in FAIL_VOLUMES:
        vol = report["volumes"][vid]
        assert vol["state"] == "complete", (vid, vol["state"], vol["error"])
        assert vol["rebuilds_completed"] >= 1, (vid, vol["transitions"])
    return report, elapsed


def _acceptance() -> tuple[dict, dict]:
    report, elapsed = _gated_run(CLIENTS)
    section = {
        "volumes": VOLUMES,
        "clients": CLIENTS,
        "spares": SPARES,
        "fail_volumes": list(FAIL_VOLUMES),
        "elapsed_s": round(elapsed, 4),
        "volumes_per_s": round(VOLUMES / elapsed, 1),
        "gates": report["gates"],
        "states": report["states"],
        "rebuilds_completed": report["rebuilds_completed"],
        "breaker_trips": report["breaker_trips"],
        "crashes": report["crashes"],
        "resumes": report["resumes"],
        "degraded_reads": report["degraded_reads"],
        "tenants": report["tenants"],
    }
    return report, section


def _determinism(baseline: dict) -> dict:
    """Re-run with a different pool width; per-volume results must match.

    Volumes share nothing but the spare pool, and contention for it only
    arises in configs where demand exceeds supply (not this one), so the
    thread schedule must not leak into any per-volume number.
    """
    other_clients = 2 if CLIENTS != 2 else 3
    report, elapsed = _gated_run(other_clients)
    mismatches = []
    for a, b in zip(baseline["volumes"], report["volumes"]):
        for key in _DETERMINISTIC_KEYS:
            if a[key] != b[key]:
                mismatches.append((a["volume_id"], key))
    assert not mismatches, (
        f"fleet results depend on client-pool width: {mismatches[:5]}"
    )
    return {
        "clients_compared": [CLIENTS, other_clients],
        "elapsed_s": round(elapsed, 4),
        "volumes_compared": VOLUMES,
        "keys_compared": list(_DETERMINISTIC_KEYS),
        "bit_stable": True,
    }


def bench_fleet(benchmark, show):
    def _run() -> dict:
        baseline, acceptance = _acceptance()
        determinism = _determinism(baseline)
        return {
            "meta": {
                "smoke": SMOKE,
                "cpus": os.cpu_count(),
                "config": _config().to_dict(),
            },
            "acceptance": acceptance,
            "determinism": determinism,
        }

    report = benchmark.pedantic(_run, rounds=1, iterations=1)
    acc = report["acceptance"]
    report["summary"] = {
        "volumes_per_s": acc["volumes_per_s"],
        "rebuilds_completed": acc["rebuilds_completed"],
        "all_gates_ok": all(acc["gates"].values()),
        "bit_stable_across_pool_widths": report["determinism"]["bit_stable"],
    }
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    lines = [
        f"fleet acceptance: {acc['volumes']} volumes, "
        f"{len(acc['fail_volumes'])} injected disk failures "
        f"(BENCH_fleet.json; smoke={report['meta']['smoke']})",
        f"  drained in {acc['elapsed_s']}s ({acc['volumes_per_s']} vol/s), "
        f"{acc['rebuilds_completed']} spare rebuilds, "
        f"{acc['breaker_trips']} breaker trips, "
        f"{acc['crashes']} crashes / {acc['resumes']} resumes",
    ]
    for tenant, t in acc["tenants"].items():
        lines.append(
            f"  {tenant:>8}: worst closed p99 {t['worst_closed_p99']:.1f} "
            f"ticks vs target {t['p99_target']}"
        )
    det = report["determinism"]
    lines.append(
        f"  bit-stable across client pools {det['clients_compared']} "
        f"({len(det['keys_compared'])} keys x {det['volumes_compared']} volumes)"
    )
    show("\n".join(lines))

    assert report["summary"]["all_gates_ok"]
