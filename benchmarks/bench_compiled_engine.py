"""Compiled executor vs audited engine: blocks/s per (code, approach).

Every supported conversion at p=13 is run over full alignment cycles
(~192 stripe-groups) through both engines; results must be byte-identical
with identical per-disk I/O counters, and the compiled path must clear a
10x blocks/s margin.  A Figure-19-scale trace simulation (0.6M data
blocks) is also timed to guard the vectorised ``simulate_closed``.

Machine-readable output lands in ``BENCH_engine.json`` at the repo root:

    {"meta": {...},
     "results": [{"code", "approach", "groups", "data_blocks",
                  "audited_s", "compiled_s",
                  "audited_blocks_per_s", "compiled_blocks_per_s",
                  "speedup"}, ...],
     "fig19_sim": {"fcfs_s", "ncq64_s"}}
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.compiled import compile_plan, execute_plan_compiled
from repro.migration import (
    build_plan,
    execute_plan,
    prepare_source_array,
    supported_conversions,
)
from repro.migration.approaches import alignment_cycle
from repro.simdisk import get_preset, simulate_closed
from repro.workloads import conversion_trace

P = 13
BLOCK = 32
GROUPS_TARGET = 192  # large batches amortise per-phase numpy overhead
MIN_SPEEDUP = 10.0
OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def _groups_for(code: str, approach: str, p: int) -> int:
    plan = build_plan(code, approach, p, groups=1)
    cycle = alignment_cycle(code, p, plan.n)
    return cycle * max(1, -(-GROUPS_TARGET // cycle))


def _time_config(code: str, approach: str) -> dict:
    groups = _groups_for(code, approach, P)
    plan = build_plan(code, approach, P, groups=groups)
    array, data = prepare_source_array(plan, np.random.default_rng(0), block_size=BLOCK)
    snapshot = array.snapshot()

    t0 = time.perf_counter()
    audited = execute_plan(plan, array, data)
    audited_s = time.perf_counter() - t0
    expect = array.snapshot()
    expect_reads, expect_writes = array.reads.copy(), array.writes.copy()

    program = compile_plan(plan)
    compiled_s = float("inf")
    for _ in range(3):
        array.restore(snapshot)
        t0 = time.perf_counter()
        compiled = execute_plan_compiled(plan, array, data, program=program)
        compiled_s = min(compiled_s, time.perf_counter() - t0)

    assert np.array_equal(array.snapshot(), expect), f"{code}/{approach}: bytes differ"
    assert np.array_equal(array.reads, expect_reads), f"{code}/{approach}: reads differ"
    assert np.array_equal(array.writes, expect_writes), f"{code}/{approach}: writes differ"
    assert compiled.measured_total == audited.measured_total

    return {
        "code": code,
        "approach": approach,
        "groups": groups,
        "data_blocks": plan.data_blocks,
        "audited_s": round(audited_s, 4),
        "compiled_s": round(compiled_s, 4),
        "audited_blocks_per_s": round(plan.data_blocks / audited_s, 1),
        "compiled_blocks_per_s": round(plan.data_blocks / compiled_s, 1),
        "speedup": round(audited_s / compiled_s, 2),
    }


def _time_fig19_sim() -> dict:
    p = 5
    plan = build_plan("code56", "direct", p, groups=alignment_cycle("code56", p, p))
    trace = conversion_trace(
        plan, total_data_blocks=600_000, block_size=4096, lb_rotation_period=16
    )
    model = get_preset("sata-7200")
    out = {}
    for label, window in (("fcfs_s", None), ("ncq64_s", 64)):
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            simulate_closed(trace, model, reorder_window=window)
            best = min(best, time.perf_counter() - t0)
        out[label] = round(best, 4)
    return out


def _run() -> dict:
    results = [_time_config(code, approach) for code, approach in supported_conversions()]
    return {
        "meta": {
            "p": P,
            "block_size": BLOCK,
            "groups_target": GROUPS_TARGET,
            "min_speedup_required": MIN_SPEEDUP,
            "fig19_data_blocks": 600_000,
        },
        "results": results,
        "fig19_sim": _time_fig19_sim(),
    }


def bench_compiled_engine(benchmark, show):
    report = benchmark.pedantic(_run, rounds=1, iterations=1)
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    lines = [f"compiled vs audited engine, p={P}, bs={BLOCK} (BENCH_engine.json)"]
    for r in report["results"]:
        lines.append(
            f"{r['approach']:>10}({r['code']:<13}) g={r['groups']:>4}: "
            f"{r['audited_blocks_per_s']:>10,.0f} -> "
            f"{r['compiled_blocks_per_s']:>12,.0f} blk/s  ({r['speedup']:.1f}x)"
        )
    sim = report["fig19_sim"]
    lines.append(
        f"Fig-19-scale simulate_closed: FCFS {sim['fcfs_s']:.3f}s, "
        f"NCQ-64 {sim['ncq64_s']:.3f}s"
    )
    show("\n".join(lines))

    worst = min(r["speedup"] for r in report["results"])
    assert worst >= MIN_SPEEDUP, f"worst compiled speedup {worst}x < {MIN_SPEEDUP}x"
    assert sim["fcfs_s"] < 1.0 and sim["ncq64_s"] < 1.0
