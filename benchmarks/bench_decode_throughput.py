"""Engineering baseline (not a paper figure): double-erasure decode speed.

Measures the apply phase (planning is cached) of rebuilding two whole
columns over batched 4KB stripes, for every code plus Code 5-6's
Algorithm 1 chain decoder.
"""

import numpy as np
import pytest

from repro.codes import CODE_NAMES, apply_recovery_plan, code56_layout, get_code
from repro.core.chain_decoder import plan_double_column_recovery

BLOCK = 4096
BATCH = 64


def _setup(name):
    code = get_code(name, 7)
    rng = np.random.default_rng(0)
    data = rng.integers(0, 256, size=(BATCH, code.num_data, BLOCK), dtype=np.uint8)
    stripes = code.make_stripe(data)
    cols = code.layout.physical_cols
    f1, f2 = cols[0], cols[2]
    plan = code.plan_column_recovery(f1, f2)
    broken = stripes.copy()
    broken[:, :, f1, :] = 0
    broken[:, :, f2, :] = 0
    return plan, broken, stripes


@pytest.mark.parametrize("name", CODE_NAMES)
def bench_decode_generic(benchmark, name):
    plan, broken, expect = _setup(name)

    def run():
        work = broken.copy()
        return apply_recovery_plan(plan, work)

    out = benchmark(run)
    assert np.array_equal(out, expect)


def bench_decode_code56_chain(benchmark):
    """Algorithm 1's sequential chain plan (optimal XOR count)."""
    code = get_code("code56", 7)
    rng = np.random.default_rng(0)
    data = rng.integers(0, 256, size=(BATCH, code.num_data, BLOCK), dtype=np.uint8)
    stripes = code.make_stripe(data)
    plan = plan_double_column_recovery(code56_layout(7), 1, 3)
    broken = stripes.copy()
    broken[:, :, 1, :] = 0
    broken[:, :, 3, :] = 0

    def run():
        work = broken.copy()
        return apply_recovery_plan(plan, work)

    out = benchmark(run)
    assert np.array_equal(out, stripes)
