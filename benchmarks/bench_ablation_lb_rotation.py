"""Ablation - load-balancing rotation period.

The LB implementation rotates the column-to-disk assignment every k
stripe-groups.  Small k spreads the parity write stream best but breaks
up sequential runs; large k approaches the dedicated (NLB) layout.  This
sweep locates the regime the paper's "every a few stripes" phrasing
implies — the simulated makespan is flat across moderate k and worst at
the extremes.
"""

from repro.migration import build_plan
from repro.migration.approaches import alignment_cycle
from repro.simdisk import get_preset, simulate_closed
from repro.workloads import conversion_trace

MODEL = get_preset("sata-7200")
PERIODS = (1, 4, 16, 64, 256, None)  # None = dedicated layout (NLB)


def _sweep():
    plan = build_plan("code56", "direct", 5, groups=alignment_cycle("code56", 5))
    rows = []
    for period in PERIODS:
        trace = conversion_trace(
            plan,
            total_data_blocks=120_000,
            block_size=4096,
            lb_rotation_period=period,
        )
        res = simulate_closed(trace, MODEL)
        rows.append((period, res.makespan_s, res.per_disk_busy_ms.std()))
    return rows


def bench_ablation_lb_rotation(benchmark, show):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    lines = [
        "Ablation - LB rotation period (Code 5-6, p=5, B=120k, 4KB)",
        f"{'period':>8} {'makespan':>10} {'per-disk busy stddev':>22}",
    ]
    for period, makespan, spread in rows:
        label = "NLB" if period is None else str(period)
        lines.append(f"{label:>8} {makespan:>9.1f}s {spread:>20.0f}ms")
    show("\n".join(lines))
    by = {p: m for p, m, _ in rows}
    # rotating at a moderate period beats the dedicated layout
    assert by[16] < by[None]
    # disk-load spread shrinks once rotation is on
    spreads = {p: s for p, _, s in rows}
    assert spreads[16] < spreads[None]
