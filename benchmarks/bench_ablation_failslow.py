"""Ablation - a fail-slow disk during the conversion.

Disks rarely fail cleanly; they get *slow* (the fail-slow fault model).
The result is sobering and layout-independent: the conversion streams
every disk at near-full-track utilisation (reads on the old disks, the
parity column on the new one, and rotational fly-over makes a
3-of-4-rows read pattern cost a full track anyway), so ONE slow spindle
sets the pace of the whole migration - whether it holds data or parity,
and whether or not the parity role rotates.  Fail-slow detection, not
layout, is the defence; the paper's shorter conversion window is what
bounds the exposure.
"""

import numpy as np

from repro.migration import build_plan
from repro.migration.approaches import alignment_cycle
from repro.simdisk import DiskArraySimulator, DiskModel, get_preset
from repro.workloads import conversion_trace

P = 5
BLOCKS = 2_400  # event-driven engine: keep the request count modest
FAST = get_preset("sata-7200")
SLOW = DiskModel(
    name="fail-slow",
    rpm=FAST.rpm,
    single_cyl_seek_ms=FAST.single_cyl_seek_ms * 4,
    max_seek_ms=FAST.max_seek_ms * 4,
    cylinders=FAST.cylinders,
    blocks_per_cylinder=FAST.blocks_per_cylinder,
    transfer_mb_s=FAST.transfer_mb_s / 4,
)


def _makespan(slow_disk: int | None, lb: int | None) -> float:
    plan = build_plan("code56", "direct", P, groups=alignment_cycle("code56", P))
    trace = conversion_trace(
        plan, total_data_blocks=BLOCKS, block_size=4096, lb_rotation_period=lb
    )
    models = [FAST] * plan.n
    if slow_disk is not None:
        models[slow_disk] = SLOW
    sim = DiskArraySimulator(FAST, plan.n, scheduler="fcfs", models=models)
    return sim.run(trace).makespan_s


def _sweep():
    return {
        "healthy NLB": _makespan(None, None),
        "slow parity disk, NLB": _makespan(P - 1, None),
        "slow data disk, NLB": _makespan(0, None),
        "slow parity disk, LB": _makespan(P - 1, 4),
    }


def bench_ablation_failslow(benchmark, show):
    out = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    lines = [f"Fail-slow disk during the Code 5-6 conversion (p={P}, B={BLOCKS})"]
    for label, secs in out.items():
        lines.append(f"  {label:>24}: {secs:7.3f}s")
    lines.append("  -> one slow spindle paces the conversion, wherever it sits")
    show("\n".join(lines))
    healthy = out["healthy NLB"]
    slow_cases = [v for k, v in out.items() if k != "healthy NLB"]
    # any fail-slow disk throttles the conversion by roughly its slowdown
    assert all(v > 2.5 * healthy for v in slow_cases)
    # and the layout/rotation makes no material difference (within 10%)
    assert max(slow_cases) <= 1.1 * min(slow_cases)
