"""Figure 11 - new parity generation ratio (fraction of B).

Freshly generated parity blocks normalised by B.  Code 5-6 generates
only the diagonal column - 1/(p-2) of B, the paper's up-to-80%
reduction against the double-parity generators.

Regenerates the figure's series for p in {5, 7, 11, 13} from
block-accurate (engine-verified) conversion plans.
"""

from conftest import compute_metric_series, render_series


def bench_fig11_new_parity(benchmark, show):
    rows = benchmark(compute_metric_series, "new_parity_ratio")
    assert rows, "no series produced"
    show(render_series("Figure 11 - new parity generation ratio (fraction of B)", rows))
    # Code 5-6's series must be minimal in every column of this figure
    code56 = next(vals for key, vals in rows if "code56" in key)
    for key, vals in rows:
        for ours, theirs in zip(code56, vals):
            assert ours <= theirs + 1e-9, (key, ours, theirs)
