"""Table V - simulated conversion-time speedup (p = 5 and p = 7, LB).

Table IV's comparison repeated with the disk-model simulation instead of
the B*Te analysis: each code's best approach at its canonical width,
traces tiled to the paper's 0.6M blocks, 4KB block size, load balancing.
The paper reports larger speedups here than in the analysis (seek and
rotation penalise the scattered I/O of the other conversions), growing
from p=5 to p=7.

Both primes ride one :class:`repro.sweep.SweepSpec` — the sweep runner
builds every plan and trace; this module only folds makespans to each
code's best approach.
"""

from repro.sweep import SweepSpec, Workload, run_sweep

TOTAL_BLOCKS = 600_000


def _speedup_table(primes=(5, 7)):
    spec = SweepSpec(
        primes=tuple(primes),
        workloads=(Workload.sim(total_blocks=TOTAL_BLOCKS, block_size=4096, lb=16),),
    )
    result = run_sweep(spec, workers=0)
    out: dict[int, dict[str, float]] = {}
    for p in primes:
        times: dict[str, float] = {}
        for r in result.results:
            if r["p"] != p or "result" not in r:
                continue
            t = r["result"]["makespan_s"]
            times[r["code"]] = min(times.get(r["code"], float("inf")), t)
        base = times.pop("code56")
        out[p] = {code: t / base for code, t in times.items()}
    return out


def bench_table05_speedup_sim(benchmark, show):
    result = benchmark.pedantic(_speedup_table, rounds=1, iterations=1)
    codes = sorted({c for v in result.values() for c in v})
    lines = [
        "Table V - simulated speedup of Code 5-6 (best approach per code, LB, 4KB)",
        f"{'p':>4} " + " ".join(f"{c:>9}" for c in codes),
    ]
    for p, speeds in result.items():
        lines.append(
            f"{p:>4} " + " ".join(f"{speeds.get(c, float('nan')):>9.2f}" for c in codes)
        )
    show("\n".join(lines))
    assert all(s > 1.0 for speeds in result.values() for s in speeds.values())
    # Section V-C: larger p -> higher speedup (vs RDP, the common baseline)
    assert result[7]["rdp"] >= result[5]["rdp"] * 0.95
