"""Figure 16 - conversion time without load balancing (fraction of B*Te).

Makespan under the dedicated-parity layout: within each phase the
busiest disk bounds progress; the two-step approaches add their
phases' makespans.

Regenerates the figure's series for p in {5, 7, 11, 13} from
block-accurate (engine-verified) conversion plans.
"""

from conftest import compute_metric_series, render_series


def bench_fig16_time_nlb(benchmark, show):
    rows = benchmark(compute_metric_series, "time_nlb")
    assert rows, "no series produced"
    show(render_series("Figure 16 - conversion time without load balancing (fraction of B*Te)", rows))
    # Code 5-6's series must be minimal in every column of this figure
    code56 = next(vals for key, vals in rows if "code56" in key)
    for key, vals in rows:
        for ours, theirs in zip(code56, vals):
            assert ours <= theirs + 1e-9, (key, ours, theirs)
