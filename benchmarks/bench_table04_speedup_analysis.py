"""Table IV - analytic conversion-time speedup of Code 5-6, by n.

For each post-conversion width n in {5, 6, 7}, every other code converts
under its *best* approach and its time is divided by Code 5-6's (same
n, virtual disks/shortening where needed).  Printed for both the NLB and
LB timing models; the paper's only fully legible cell (X-Code, n=5,
NLB = 1.27) is asserted as a band.
"""

from repro.analysis import speedup_table


def _both():
    return {
        "NLB": speedup_table(n_values=(5, 6, 7), load_balanced=False),
        "LB": speedup_table(n_values=(5, 6, 7), load_balanced=True),
    }


def bench_table04_speedup_analysis(benchmark, show):
    tables = benchmark(_both)
    lines = ["Table IV - speedup of Code 5-6 over each code's best approach"]
    for mode, cells in tables.items():
        lines.append(f"-- {mode} --")
        lines.append(f"{'n':>3} {'code':>8} {'best approach':>14} {'p':>3} {'speedup':>8}")
        for c in cells:
            lines.append(
                f"{c.n:>3} {c.code:>8} {c.best_approach:>14} {c.p:>3} {c.speedup:>8.2f}"
            )
    show("\n".join(lines))
    nlb = {(c.n, c.code): c.speedup for c in tables["NLB"]}
    lb = {(c.n, c.code): c.speedup for c in tables["LB"]}
    assert abs(nlb[(5, "xcode")] - 1.27) < 0.12  # the paper's legible cell
    assert all(s >= 1.0 - 1e-9 for s in lb.values())  # Code 5-6 never loses w/ LB
