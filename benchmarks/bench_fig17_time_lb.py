"""Figure 17 - conversion time with load balancing (fraction of B*Te).

Makespan when the dedicated-parity role rotates every few
stripe-groups, spreading the parity write stream over all spindles.

Regenerates the figure's series for p in {5, 7, 11, 13} from
block-accurate (engine-verified) conversion plans.
"""

from conftest import compute_metric_series, render_series


def bench_fig17_time_lb(benchmark, show):
    rows = benchmark(compute_metric_series, "time_lb")
    assert rows, "no series produced"
    show(render_series("Figure 17 - conversion time with load balancing (fraction of B*Te)", rows))
    # Code 5-6's series must be minimal in every column of this figure
    code56 = next(vals for key, vals in rows if "code56" in key)
    for key, vals in rows:
        for ours, theirs in zip(code56, vals):
            assert ours <= theirs + 1e-9, (key, ours, theirs)
