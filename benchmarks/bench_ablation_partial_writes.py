"""Ablation - partial-stripe write cost across the comparison codes.

Post-conversion write behaviour matters as much as the conversion itself
(Table III's "single write performance" and the paper's Section V-D note
that "Code 5-6 provides high write performance after conversion").  This
sweep prices writes of w consecutive blocks for every code: average
best-path I/Os per written block.
"""

from repro.analysis.writes import average_partial_write_cost
from repro.codes import CODE_NAMES, get_layout

P = 7
LENGTHS = (1, 2, 4, 8, 16)


def _sweep():
    table = {}
    for name in CODE_NAMES:
        lay = get_layout(name, P)
        table[name] = [
            average_partial_write_cost(lay, w) / w
            for w in LENGTHS
            if w <= lay.num_data
        ]
    return table


def bench_ablation_partial_writes(benchmark, show):
    table = benchmark(_sweep)
    lines = [
        f"Partial-stripe writes at p={P}: average I/Os per written block",
        f"{'code':>8} " + " ".join(f"w={w:>2}   " for w in LENGTHS),
    ]
    for name, vals in sorted(table.items()):
        cells = " ".join(f"{v:7.2f}" for v in vals)
        lines.append(f"{name:>8} {cells}")
    show("\n".join(lines))
    # single writes: Code 5-6 is optimal (6 I/Os); HDP's penalty-3 update
    # (8 I/Os) and EVENODD's adjuster storm are the expensive tails
    singles = {name: vals[0] for name, vals in table.items()}
    assert singles["code56"] == 6.0
    assert singles["code56"] == min(singles.values())
    assert singles["hdp"] == 8.0
    assert singles["evenodd"] > singles["rdp"] > singles["code56"]
    # amortisation: every code gets cheaper per block as w grows
    for name, vals in table.items():
        assert vals[-1] <= vals[0]
