"""Figure 19 - simulated conversion time (DiskSim-substitute).

The paper's trace-driven experiment: migration I/O traces for B = 0.6M
data blocks at 4KB and 8KB block sizes, replayed through the disk-array
simulator with load-balancing support.  Two queueing disciplines are
reported:

* **FCFS** — the trace order verbatim (a conversion daemon issuing one
  group at a time): Code 5-6 is strictly fastest and the saving versus
  the slowest conversion is far past the paper's 89%;
* **NCQ-64** — per-disk elevator reordering within a 64-deep queue: the
  in-place vertical codes recover some of their reserve-region seek
  cost, H-Code's via-RAID-0 (whose write pattern interleaves perfectly
  with its reads) pulls even with Code 5-6, and the saving lands at
  ~96%.

Either way the paper's shape holds: the direct Code 5-6 conversion is
the (co-)fastest and the vertical in-place conversions are the slowest.

The grid itself is one :class:`repro.sweep.SweepSpec` per panel — the
sweep runner owns plan building, trace tiling and simulation, so this
module only declares the panel and renders the rows.
"""

from repro.sweep import SweepSpec, Workload, run_sweep

#: the paper's 0.6 million data blocks
TOTAL_BLOCKS = 600_000
NCQ = 64


def _simulate(p: int, block_size: int, reorder_window: int | None):
    spec = SweepSpec(
        primes=(p,),
        workloads=(
            Workload.sim(
                total_blocks=TOTAL_BLOCKS,
                block_size=block_size,
                lb=16,
                reorder_window=reorder_window,
            ),
        ),
    )
    result = run_sweep(spec, workers=0)
    rows = [
        (r["label"], r["result"]["makespan_s"])
        for r in result.results
        if "result" in r
    ]
    return sorted(rows, key=lambda r: r[1])


def _render(title: str, rows) -> str:
    base = dict(rows)["direct(code56)"]
    lines = [title]
    for label, secs in rows:
        lines.append(f"{label:>36}: {secs:9.1f}s   ({secs / base:5.2f}x Code 5-6)")
    worst = rows[-1][1]
    lines.append(f"{'time saved vs slowest':>36}: {1 - base / worst:9.1%}")
    return "\n".join(lines)


def bench_fig19_simulated_time_4k_fcfs(benchmark, show):
    rows = benchmark.pedantic(_simulate, args=(5, 4096, None), rounds=1, iterations=1)
    show(_render("Figure 19(a) - p=5, 4KB, B=0.6M, LB, FCFS", rows))
    assert rows[0][0] == "direct(code56)"  # strictly fastest under FCFS
    base, worst = dict(rows)["direct(code56)"], rows[-1][1]
    assert 1 - base / worst >= 0.80


def bench_fig19_simulated_time_4k_ncq(benchmark, show):
    rows = benchmark.pedantic(_simulate, args=(5, 4096, NCQ), rounds=1, iterations=1)
    show(_render(f"Figure 19(a) - p=5, 4KB, B=0.6M, LB, NCQ-{NCQ}", rows))
    base = dict(rows)["direct(code56)"]
    # Code 5-6 within 5% of the front under elevator reordering
    assert base <= rows[0][1] * 1.05
    assert 1 - base / rows[-1][1] >= 0.80


def bench_fig19_simulated_time_8k(benchmark, show):
    rows = benchmark.pedantic(_simulate, args=(5, 8192, None), rounds=1, iterations=1)
    show(_render("Figure 19(b) - p=5, 8KB, B=0.6M, LB, FCFS", rows))
    assert rows[0][0] == "direct(code56)"


def bench_fig19_simulated_time_p7(benchmark, show):
    rows = benchmark.pedantic(_simulate, args=(7, 4096, None), rounds=1, iterations=1)
    show(_render("Figure 19 - p=7, 4KB, B=0.6M, LB, FCFS", rows))
    assert rows[0][0] == "direct(code56)"
