"""Table III - qualitative comparison of MDS codes for RAID-5 -> RAID-6.

The paper grades each code on single-write performance, conversion
complexity and conversion efficiency.  We compute the quantitative
stand-ins: average update penalty (lower = better single-write), total
conversion I/O under the code's best approach (complexity), and its
inverse ranking (efficiency); then check the grades' *order* matches the
paper's table — Code 5-6 is the only "High / Low / High" row.
"""

from repro.analysis import metrics_from_plan
from repro.analysis.costmodel import comparison_width
from repro.codes import CODE_NAMES, get_code
from repro.migration import build_plan
from repro.migration.approaches import _SUPPORTED, alignment_cycle


def _table(p: int = 5):
    rows = []
    for name in CODE_NAMES:
        code = get_code(name, p)
        pens = [code.layout.update_penalty(c) for c in code.layout.data_cells]
        avg_pen = sum(pens) / len(pens)
        best = None
        for approach, codes in _SUPPORTED.items():
            if name not in codes:
                continue
            n = comparison_width(name, p)
            plan = build_plan(name, approach, p, groups=alignment_cycle(name, p, n), n_disks=n)
            m = metrics_from_plan(plan)
            if best is None or m.total_ios < best[1].total_ios:
                best = (approach, m)
        rows.append((name, avg_pen, best[0], best[1].total_ios, best[1].time_lb))
    return rows


def bench_table03_comparison(benchmark, show):
    rows = benchmark(_table, 5)
    lines = [
        "Table III - code comparison at p=5 (measured stand-ins for the grades)",
        f"{'code':>8} {'update penalty':>15} {'best approach':>14} "
        f"{'total I/O (xB)':>15} {'time LB (xB*Te)':>16}",
    ]
    for name, pen, approach, total, tlb in rows:
        lines.append(f"{name:>8} {pen:>15.2f} {approach:>14} {total:>15.3f} {tlb:>16.3f}")
    show("\n".join(lines))
    by_code = {r[0]: r for r in rows}
    # single write: EVENODD's adjuster storm makes it worst; code56 optimal
    assert by_code["code56"][1] == 2.0
    assert by_code["evenodd"][1] > by_code["rdp"][1] > by_code["code56"][1]
    # conversion complexity/efficiency: Code 5-6 has the lowest total I/O
    assert by_code["code56"][3] == min(r[3] for r in rows)
    assert by_code["code56"][4] == min(r[4] for r in rows)
