"""Figure 6 - hybrid single-disk recovery read I/O.

When one Code 5-6 data column fails, mixing horizontal and diagonal
recovery chains shares reads between chains: 9 reads per stripe instead
of 12 at p = 5 (the paper rounds the ratio 12/9 = 1.33x to "up to 33%"
fewer reads).  The benchmark measures the optimiser itself and prints
per-p read counts.
"""

from repro.codes import code56_layout
from repro.core.recovery import plan_hybrid_recovery

PRIMES = (5, 7, 11, 13)


def _sweep():
    rows = []
    for p in PRIMES:
        lay = code56_layout(p)
        per_col = [plan_hybrid_recovery(lay, col) for col in range(p - 1)]
        hybrid = max(h.reads for h in per_col)
        conventional = per_col[0].conventional_reads
        rows.append((p, hybrid, conventional, 1 - hybrid / conventional))
    return rows


def bench_fig06_single_recovery(benchmark, show):
    rows = benchmark(_sweep)
    lines = [
        "Figure 6 - single-disk recovery reads per stripe (hybrid vs conventional)",
        f"{'p':>4} {'hybrid':>8} {'conventional':>13} {'saved':>8}",
    ]
    for p, hyb, conv, saved in rows:
        lines.append(f"{p:>4} {hyb:>8} {conv:>13} {saved:>7.0%}")
    show("\n".join(lines))
    by_p = {p: (h, c) for p, h, c, _ in rows}
    assert by_p[5] == (9, 12)  # the paper's exact numbers
    for p, hyb, conv, _ in rows:
        assert hyb < conv
