"""Extension of Figure 6 - hybrid single-disk recovery for every code.

The paper applies Xiang et al.'s read-sharing recovery to Code 5-6 and
notes it "can be used in many MDS codes to provide higher reliability".
This bench runs the generalised optimiser over the full comparison set:
per-stripe reads for the worst *data*-column failure, hybrid vs
conventional single-family recovery.
"""

from repro.codes import CODE_NAMES, get_layout
from repro.core import plan_generic_hybrid_recovery

PRIMES = (5, 7)


def _sweep():
    rows = []
    for p in PRIMES:
        for name in CODE_NAMES:
            lay = get_layout(name, p)
            per_col = [plan_generic_hybrid_recovery(lay, c) for c in lay.physical_cols]
            # report the best achievable saving over the column choices
            best = max(per_col, key=lambda h: h.read_savings)
            rows.append((p, name, best.reads, best.conventional_reads, best.read_savings))
    return rows


def bench_ablation_recovery_all_codes(benchmark, show):
    rows = benchmark(_sweep)
    lines = [
        "Hybrid single-disk recovery, generalised to all codes (best column)",
        f"{'p':>3} {'code':>8} {'hybrid':>8} {'conventional':>13} {'saved':>7}",
    ]
    for p, name, hyb, conv, saved in rows:
        lines.append(f"{p:>3} {name:>8} {hyb:>8} {conv:>13} {saved:>6.0%}")
    show("\n".join(lines))
    by = {(p, n): (h, c) for p, n, h, c, _ in rows}
    assert by[(5, "code56")] == (9, 12)  # Fig. 6
    assert by[(5, "rdp")] == (12, 16)  # Xiang et al.'s RDP result
    assert all(h <= c for h, c in by.values())
