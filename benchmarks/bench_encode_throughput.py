"""Engineering baseline (not a paper figure): encode throughput per code.

Batched stripe encoding over 4KB blocks — the vectorised numpy XOR path
every conversion and write amplifies.  Useful for spotting regressions
in the chain engine; the RS baseline shows the cost of GF(2^8) math
versus pure XOR.
"""

import numpy as np
import pytest

from repro.codes import CODE_NAMES, ReedSolomonRaid6, get_code

BLOCK = 4096
BATCH = 64


@pytest.mark.parametrize("name", CODE_NAMES)
def bench_encode(benchmark, name):
    code = get_code(name, 7)
    rng = np.random.default_rng(0)
    stripes = rng.integers(
        0, 256, size=(BATCH, code.rows, code.cols, BLOCK), dtype=np.uint8
    )
    result = benchmark(code.encode, stripes)
    assert result is stripes
    mb = BATCH * code.num_data * BLOCK / 1e6
    benchmark.extra_info["data_mb_per_round"] = round(mb, 2)


def bench_encode_rs_reference(benchmark):
    rs = ReedSolomonRaid6(k=6, rows=BATCH)
    rng = np.random.default_rng(0)
    stripe = rs.empty_stripe(BLOCK)
    stripe[:, :6, :] = rng.integers(0, 256, size=(BATCH, 6, BLOCK), dtype=np.uint8)
    benchmark(rs.encode, stripe)
    assert rs.verify(stripe)
