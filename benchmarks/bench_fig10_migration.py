"""Figure 10 - old parity migration ratio (fraction of B).

Old parities moved to a new dedicated disk, normalised by B.  Only the
via-RAID-4 conversions migrate; Code 5-6 leaves the old parities
exactly where its horizontal parities live.

Regenerates the figure's series for p in {5, 7, 11, 13} from
block-accurate (engine-verified) conversion plans.
"""

from conftest import compute_metric_series, render_series


def bench_fig10_migration(benchmark, show):
    rows = benchmark(compute_metric_series, "migration_ratio")
    assert rows, "no series produced"
    show(render_series("Figure 10 - old parity migration ratio (fraction of B)", rows))
    # Code 5-6's series must be minimal in every column of this figure
    code56 = next(vals for key, vals in rows if "code56" in key)
    for key, vals in rows:
        for ours, theirs in zip(code56, vals):
            assert ours <= theirs + 1e-9, (key, ours, theirs)
