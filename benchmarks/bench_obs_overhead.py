"""Instrumentation overhead on the compiled engine: must be noise.

The ``repro.obs`` tracer is called unconditionally inside
``execute_plan_compiled`` (compile / execute / per-phase spans).  This
benchmark proves the disabled path costs < 5% against the PR-1 compiled
baseline recorded in ``BENCH_engine.json``, two ways:

* **aggregate wall clock** — every (code, approach) config at p=13 is
  re-timed (min of ``REPEATS`` runs, cached compiled program, tracing
  off) and the *summed* time across all configs is compared to the
  file's summed ``compiled_s``.  Per-config deltas on ~3 ms runs are
  machine noise in both directions; the aggregate cancels it (the
  per-config table is still recorded for inspection, ungated).
* **direct null-span cost** — the disabled ``tracer.span()`` call is
  microbenchmarked and multiplied by the number of instrumentation
  sites a run actually passes, as a share of the fastest run.

Tracing-*enabled* timings ride along for scale but are not gated —
span capture is allowed to cost something.

The wall-clock comparison is only meaningful against a baseline from the
same machine: regenerate it first (``pytest benchmarks/
bench_compiled_engine.py``), as CI does.  Sub-5-ms timings on shared
hardware drift by tens of percent between sessions, which is exactly why
the direct null-span measurement is the second, machine-independent leg
of the proof.

Machine-readable output lands in ``BENCH_obs.json`` at the repo root:

    {"meta": {...},
     "results": [{"code", "approach", "groups", "data_blocks",
                  "ref_compiled_s", "disabled_s", "enabled_s",
                  "spans_per_run"}, ...],
     "aggregate": {"ref_total_s", "disabled_total_s", "enabled_total_s",
                   "overhead_disabled_pct", "overhead_enabled_pct"},
     "null_span": {"ns_per_call", "max_calls_per_run",
                   "worst_run_share_pct"}}

Run standalone (``python benchmarks/bench_obs_overhead.py``) or through
pytest-benchmark (``pytest benchmarks/bench_obs_overhead.py``).
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.compiled import compile_plan, execute_plan_compiled
from repro.migration import build_plan, prepare_source_array
from repro.obs.tracer import Tracer, set_tracer

P = 13
BLOCK = 32
REPEATS = 9
MAX_OVERHEAD_PCT = 5.0
NULL_SPAN_CALLS = 200_000
ROOT = Path(__file__).resolve().parent.parent
REF_PATH = ROOT / "BENCH_engine.json"
OUT_PATH = ROOT / "BENCH_obs.json"


def _time_once(plan, array, data, snapshot, program) -> float:
    array.restore(snapshot)
    array.reset_counters()
    t0 = time.perf_counter()
    execute_plan_compiled(plan, array, data, program=program)
    return time.perf_counter() - t0


def _time_config(ref: dict) -> dict:
    code, approach, groups = ref["code"], ref["approach"], ref["groups"]
    plan = build_plan(code, approach, P, groups=groups)
    array, data = prepare_source_array(plan, np.random.default_rng(0), block_size=BLOCK)
    snapshot = array.snapshot()
    program = compile_plan(plan)  # cache-warm: timing excludes compilation

    # interleave disabled/enabled repeats so thermal drift hits both alike
    disabled_s = enabled_s = float("inf")
    spans_per_run = 0
    off, on = Tracer(enabled=False), Tracer(enabled=True)
    for _ in range(REPEATS):
        prev = set_tracer(off)
        try:
            disabled_s = min(disabled_s, _time_once(plan, array, data, snapshot, program))
        finally:
            set_tracer(prev)
        prev = set_tracer(on)
        try:
            on.clear()
            enabled_s = min(enabled_s, _time_once(plan, array, data, snapshot, program))
            spans_per_run = len(on)
        finally:
            set_tracer(prev)

    return {
        "code": code,
        "approach": approach,
        "groups": groups,
        "data_blocks": ref["data_blocks"],
        "ref_compiled_s": ref["compiled_s"],
        "disabled_s": round(disabled_s, 4),
        "enabled_s": round(enabled_s, 4),
        "spans_per_run": spans_per_run,
    }


def _time_null_span() -> float:
    """Seconds per disabled ``tracer.span()`` call (the hot-path cost)."""
    tracer = Tracer(enabled=False)
    best = float("inf")
    for _ in range(5):
        t0 = time.perf_counter()
        for _ in range(NULL_SPAN_CALLS):
            with tracer.span("x", cat="bench"):
                pass
        best = min(best, time.perf_counter() - t0)
    return best / NULL_SPAN_CALLS


def _pct(now: float, ref: float) -> float:
    return round((now - ref) / ref * 100, 1)


def _run() -> dict:
    reference = json.loads(REF_PATH.read_text())
    results = [_time_config(ref) for ref in reference["results"]]

    ref_total = sum(r["ref_compiled_s"] for r in results)
    disabled_total = sum(r["disabled_s"] for r in results)
    enabled_total = sum(r["enabled_s"] for r in results)

    ns_per_call = _time_null_span() * 1e9
    max_calls = max(r["spans_per_run"] for r in results)
    fastest_run = min(r["disabled_s"] for r in results)
    worst_share = max_calls * ns_per_call / 1e9 / fastest_run * 100

    return {
        "meta": {
            "p": P,
            "block_size": BLOCK,
            "repeats": REPEATS,
            "max_overhead_pct": MAX_OVERHEAD_PCT,
            "reference": REF_PATH.name,
        },
        "results": results,
        "aggregate": {
            "ref_total_s": round(ref_total, 4),
            "disabled_total_s": round(disabled_total, 4),
            "enabled_total_s": round(enabled_total, 4),
            "overhead_disabled_pct": _pct(disabled_total, ref_total),
            "overhead_enabled_pct": _pct(enabled_total, ref_total),
        },
        "null_span": {
            "ns_per_call": round(ns_per_call, 1),
            "max_calls_per_run": max_calls,
            "worst_run_share_pct": round(worst_share, 4),
        },
    }


def _render(report: dict) -> str:
    lines = [
        f"obs overhead on the compiled engine, p={P}, bs={BLOCK} (BENCH_obs.json)",
        f"{'config':>28} {'ref ms':>8} {'off ms':>8} {'on ms':>8} {'spans':>6}",
    ]
    for r in report["results"]:
        lines.append(
            f"{r['approach'] + '(' + r['code'] + ')':>28} "
            f"{r['ref_compiled_s'] * 1e3:>8.1f} {r['disabled_s'] * 1e3:>8.1f} "
            f"{r['enabled_s'] * 1e3:>8.1f} {r['spans_per_run']:>6}"
        )
    agg, null = report["aggregate"], report["null_span"]
    lines.append(
        f"aggregate: ref {agg['ref_total_s'] * 1e3:.1f} ms, "
        f"tracing-off {agg['disabled_total_s'] * 1e3:.1f} ms "
        f"({agg['overhead_disabled_pct']:+.1f}%), "
        f"tracing-on {agg['enabled_total_s'] * 1e3:.1f} ms "
        f"({agg['overhead_enabled_pct']:+.1f}%)  [limit +{MAX_OVERHEAD_PCT:.0f}%]"
    )
    lines.append(
        f"disabled span() call: {null['ns_per_call']:.0f} ns; worst run passes "
        f"{null['max_calls_per_run']} sites = {null['worst_run_share_pct']:.3f}% of run time"
    )
    return "\n".join(lines)


def _check(report: dict) -> None:
    agg = report["aggregate"]
    assert agg["overhead_disabled_pct"] < MAX_OVERHEAD_PCT, (
        f"disabled instrumentation costs {agg['overhead_disabled_pct']:.1f}% "
        f"in aggregate vs BENCH_engine.json (limit {MAX_OVERHEAD_PCT:.0f}%)"
    )
    assert report["null_span"]["worst_run_share_pct"] < MAX_OVERHEAD_PCT
    assert all(r["spans_per_run"] > 0 for r in report["results"]), (
        "enabled runs recorded no spans - instrumentation not reached"
    )


def bench_obs_overhead(benchmark, show):
    report = benchmark.pedantic(_run, rounds=1, iterations=1)
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    show(_render(report))
    _check(report)


if __name__ == "__main__":
    report = _run()
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(_render(report))
    _check(report)
