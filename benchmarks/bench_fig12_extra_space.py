"""Figure 12 - extra space ratio (fraction of per-disk capacity).

Capacity reserved on the existing disks before conversion.  The
in-place vertical codes need a reserve (X-Code 2/p, P-Code 2/(p-1),
HDP 1/(p-2)); Code 5-6 and the two-step approaches add whole disks.

Regenerates the figure's series for p in {5, 7, 11, 13} from
block-accurate (engine-verified) conversion plans.
"""

from conftest import compute_metric_series, render_series


def bench_fig12_extra_space(benchmark, show):
    rows = benchmark(compute_metric_series, "extra_space_ratio")
    assert rows, "no series produced"
    show(render_series("Figure 12 - extra space ratio (fraction of per-disk capacity)", rows))
    # Code 5-6's series must be minimal in every column of this figure
    code56 = next(vals for key, vals in rows if "code56" in key)
    for key, vals in rows:
        for ours, theirs in zip(code56, vals):
            assert ours <= theirs + 1e-9, (key, ours, theirs)
