"""Ablation - life after conversion: degraded reads and write amplification.

The conversion decides which code the array runs for years afterwards,
so the post-conversion service profile matters: how expensive is a read
while a disk is down, and how many physical I/Os does a logical write
cost.  Analytic degraded-read costs come from the chain model (validated
against live-array counters in the tests); write amplification is
measured by replaying a logical workload on real arrays.
"""

import numpy as np

from repro.analysis.degraded import degraded_read_table
from repro.codes import CODE_NAMES, get_code, get_layout
from repro.raid import BlockArray, Raid6Array
from repro.workloads.replay import logical_workload, replay

P = 7


def _degraded():
    rows = []
    for name in CODE_NAMES:
        lay = get_layout(name, P)
        profiles = degraded_read_table(lay)
        worst = max(p.expected_read_cost for p in profiles)
        avg = sum(p.expected_read_cost for p in profiles) / len(profiles)
        rows.append((name, avg, worst))
    return rows


def _amplification():
    rng = np.random.default_rng(0)
    rows = []
    for name in CODE_NAMES:
        code = get_code(name, P)
        arr = BlockArray(code.n_disks, 2 * code.rows, block_size=8)
        r6 = Raid6Array(arr, code)
        r6.format_with(
            rng.integers(0, 256, size=(r6.capacity_blocks, 8), dtype=np.uint8)
        )
        w = logical_workload(rng, 120, r6.capacity_blocks, read_fraction=0.0)
        res = replay(r6, w, rng)
        rows.append((name, res.write_amplification))
    return rows


def bench_ablation_degraded_reads(benchmark, show):
    rows = benchmark(_degraded)
    amp = dict(_amplification())
    lines = [
        f"Post-conversion service profile at p={P}",
        f"{'code':>8} {'degraded read (avg)':>20} {'(worst col)':>12} {'write amp':>10}",
    ]
    for name, avg, worst in sorted(rows, key=lambda r: r[1]):
        lines.append(f"{name:>8} {avg:>20.2f} {worst:>12.2f} {amp[name]:>10.2f}")
    show("\n".join(lines))
    by = {name: (avg, worst) for name, avg, worst in rows}
    # every code's degraded read stays below a full-stripe rebuild
    for name, (avg, worst) in by.items():
        lay = get_layout(name, P)
        assert worst <= lay.num_data
    # optimal-update codes amplify writes by exactly 3
    assert amp["code56"] == 3.0
    assert amp["hdp"] == 4.0
