"""Ablation - online conversion under increasing application write load.

Algorithm 2 lets writes pre-empt the conversion thread.  This sweep
measures the price: conversion completion time and per-request latency
as the write arrival rate grows.  The design point being validated is
per-parity interruption granularity — latency stays within a handful of
Te even when writes are frequent, at the cost of a stretched conversion
window.
"""

import numpy as np

from repro.migration import OnlineCode56Conversion, OnlineRequest
from repro.raid import BlockArray, Raid5Array, Raid5Layout

P = 5
GROUPS = 40
RATES = (0.0, 0.02, 0.05, 0.1, 0.2)  # writes per Te tick


def _run(rate: float, seed: int = 1):
    rng = np.random.default_rng(seed)
    m = P - 1
    array = BlockArray(m, GROUPS * (P - 1), block_size=8)
    r5 = Raid5Array(array, Raid5Layout.LEFT_ASYMMETRIC)
    data = rng.integers(0, 256, size=(r5.capacity_blocks, 8), dtype=np.uint8)
    r5.format_with(data)
    array.add_disk()
    conv = OnlineCode56Conversion(array, P)
    quiet_ticks = GROUPS * (P - 1) * (P - 1)  # conversion I/O without load
    reqs = []
    if rate > 0:
        t = 0.0
        while t < quiet_ticks:
            t += float(rng.exponential(1.0 / rate))
            lba = int(rng.integers(0, r5.capacity_blocks))
            reqs.append(
                OnlineRequest(
                    time=t,
                    lba=lba,
                    is_write=True,
                    payload=rng.integers(0, 256, size=8, dtype=np.uint8),
                )
            )
    report = conv.run(reqs)
    assert conv.verify()
    lat = np.mean(report.request_latencies) if report.request_latencies else 0.0
    return report.finish_tick / quiet_ticks, float(lat), report.interruptions


def _sweep():
    return [(rate, *_run(rate)) for rate in RATES]


def bench_ablation_online_write_load(benchmark, show):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    lines = [
        "Ablation - Algorithm 2 under application write load (p=5, 40 groups)",
        f"{'write rate':>11} {'window stretch':>15} {'mean latency':>13} {'interrupts':>11}",
    ]
    for rate, stretch, lat, ints in rows:
        lines.append(f"{rate:>11.2f} {stretch:>14.2f}x {lat:>11.1f}Te {ints:>11}")
    show("\n".join(lines))
    stretches = [r[1] for r in rows]
    assert stretches == sorted(stretches)  # more writes -> longer window
    assert all(r[2] <= 6.0 + 1e-9 for r in rows)  # latency capped by RMW cost
