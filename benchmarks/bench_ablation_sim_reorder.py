"""Ablation - windowed NCQ reordering cost in ``simulate_closed``.

The bounded-elevator model used to copy each per-disk queue and sort it
window by window in Python — at Figure-19 scale (~1M requests, window
64) that meant tens of thousands of tiny ``ndarray.sort`` calls.  The
rewrite folds the whole reordering into one ``np.lexsort`` over
``(disk, window, block)`` keys, so NCQ simulation stays within a small
constant factor of plain FCFS instead of dominating the run.
"""

import numpy as np

from repro.simdisk import get_preset, simulate_closed
from repro.workloads.trace import Trace

N_REQUESTS = 600_000
N_DISKS = 13
WINDOW = 64
MODEL = get_preset("sata-7200")


def _trace() -> Trace:
    rng = np.random.default_rng(42)
    return Trace(
        arrival_ms=np.arange(N_REQUESTS, dtype=np.float64),
        disk=rng.integers(0, N_DISKS, N_REQUESTS).astype(np.int32),
        block=rng.integers(0, 2_000_000, N_REQUESTS),
        is_write=rng.random(N_REQUESTS) < 0.5,
        block_size=4096,
    )


def bench_sim_fcfs(benchmark):
    trace = _trace()
    res = benchmark(simulate_closed, trace, MODEL)
    assert res.n_requests == N_REQUESTS


def bench_sim_ncq_window(benchmark, show):
    trace = _trace()
    res = benchmark(simulate_closed, trace, MODEL, reorder_window=WINDOW)
    assert res.n_requests == N_REQUESTS
    # elevator reordering must help, not hurt, the simulated makespan
    plain = simulate_closed(trace, MODEL)
    assert res.makespan_ms <= plain.makespan_ms
    show(
        f"NCQ-{WINDOW} makespan {res.makespan_s:,.0f}s vs FCFS "
        f"{plain.makespan_s:,.0f}s over {N_REQUESTS:,} requests"
    )
