"""Disk-simulator demo: schedulers, disk tiers, and a live migration trace.

Shows the DiskSim-substitute on its own terms:

1. a random application workload under FCFS vs SSTF vs LOOK scheduling;
2. the same migration trace on three disk tiers (7200/10k/15k RPM);
3. why conversion traffic is cheap: sequentiality (per-request service
   time vs a random workload of the same size).
"""

import numpy as np

from repro.migration import build_plan
from repro.migration.approaches import alignment_cycle
from repro.simdisk import DiskArraySimulator, PRESETS, simulate_closed
from repro.workloads import conversion_trace, uniform_trace


def schedulers_demo() -> None:
    rng = np.random.default_rng(1)
    trace = uniform_trace(
        rng, n_requests=2000, n_disks=5, blocks_per_disk=200_000,
        read_fraction=0.7, interarrival_ms=0.5,
    )
    model = PRESETS["sata-7200"]
    print("random workload (2000 reqs, 5 disks) under different schedulers:")
    for sched in ("fcfs", "sstf", "look"):
        res = DiskArraySimulator(model, 5, scheduler=sched).run(trace)
        print(f"  {sched:>4}: makespan {res.makespan_s:7.2f}s  "
              f"mean latency {res.mean_latency_ms:8.1f}ms  "
              f"p99 {res.p99_latency_ms:9.1f}ms")
    print()


def tiers_demo() -> None:
    plan = build_plan("code56", "direct", 5, groups=alignment_cycle("code56", 5))
    trace = conversion_trace(plan, total_data_blocks=120_000, block_size=4096)
    print(f"{trace.describe()}")
    print("the same Code 5-6 migration on three disk tiers:")
    for name, model in PRESETS.items():
        res = simulate_closed(trace, model)
        print(f"  {name:>10}: makespan {res.makespan_s:7.2f}s")
    print()


def sequentiality_demo() -> None:
    model = PRESETS["sata-7200"]
    plan = build_plan("code56", "direct", 5, groups=alignment_cycle("code56", 5))
    conv = conversion_trace(plan, total_data_blocks=120_000, block_size=4096)
    conv_res = simulate_closed(conv, model)
    rng = np.random.default_rng(2)
    rand = uniform_trace(
        rng, n_requests=len(conv), n_disks=conv.n_disks,
        blocks_per_disk=int(conv.block.max()) + 1, interarrival_ms=0.0,
    )
    rand_res = simulate_closed(rand, model)
    print("sequentiality is the whole ballgame:")
    print(f"  migration trace ({len(conv)} reqs, mostly streaming): "
          f"{conv_res.makespan_s:8.2f}s")
    print(f"  random trace of equal size:                           "
          f"{rand_res.makespan_s:8.2f}s "
          f"({rand_res.makespan_s / conv_res.makespan_s:.0f}x slower)")


def main() -> None:
    schedulers_demo()
    tiers_demo()
    sequentiality_demo()


if __name__ == "__main__":
    main()
