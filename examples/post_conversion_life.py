"""Life after the migration: what the converted array costs to run.

The conversion is a one-time event; the chosen code's service profile is
forever.  This example compares the candidate RAID-6 codes on the three
post-conversion axes the library models:

1. write amplification (measured by replaying a logical workload),
2. partial-stripe write cost (analytic, validated against the arrays),
3. degraded-read cost while a disk is down.
"""

import numpy as np

from repro.analysis.degraded import degraded_read_table
from repro.analysis.writes import average_partial_write_cost
from repro.codes import CODE_NAMES, get_code, get_layout
from repro.raid import BlockArray, Raid6Array
from repro.workloads.replay import logical_workload, replay

P = 7


def main() -> None:
    rng = np.random.default_rng(3)
    print(f"post-conversion service profile of each RAID-6 code (p={P})\n")
    header = (
        f"{'code':>8} {'write amp':>10} {'w=4 partial':>12} "
        f"{'degraded read':>14} {'storage eff':>12}"
    )
    print(header)
    rows = []
    for name in CODE_NAMES:
        code = get_code(name, P)
        lay = get_layout(name, P)
        # measured write amplification
        arr = BlockArray(code.n_disks, 4 * code.rows, block_size=64)
        r6 = Raid6Array(arr, code)
        r6.format_with(
            rng.integers(0, 256, size=(r6.capacity_blocks, 64), dtype=np.uint8)
        )
        w = logical_workload(rng, 150, r6.capacity_blocks, read_fraction=0.0)
        amp = replay(r6, w, rng).write_amplification
        # analytic partial write + degraded read
        partial = average_partial_write_cost(lay, 4) / 4
        degraded = sum(
            prof.expected_read_cost for prof in degraded_read_table(lay)
        ) / lay.n_disks
        rows.append((name, amp, partial, degraded, code.storage_efficiency()))
    for name, amp, partial, degraded, eff in sorted(rows, key=lambda r: r[1]):
        print(f"{name:>8} {amp:>10.2f} {partial:>12.2f} {degraded:>14.2f} {eff:>12.2f}")

    print("\nreading the table:")
    print("  - write amp: physical writes per logical write (RMW path)")
    print("  - w=4 partial: best-path I/Os per block for 4-block writes")
    print("  - degraded read: expected physical reads per logical read")
    print("    averaged over which disk failed")
    print("\nCode 5-6 keeps the optimal write path it advertises, so the")
    print("cheap conversion does not buy a worse array afterwards.")


if __name__ == "__main__":
    main()
