"""Quickstart: encode, fail, recover, migrate.

Walks the library's front door end to end:

1. build a Code 5-6 stripe, kill two disks, recover (MDS property);
2. use Algorithm 1's chain decoder and the hybrid single-disk recovery;
3. convert a 4-disk RAID-5 into a 5-disk Code 5-6 RAID-6 and show the
   paper's headline accounting (B reads + B/3 writes).
"""

import numpy as np

import repro
from repro.core import plan_double_column_recovery, plan_hybrid_recovery


def main() -> None:
    rng = np.random.default_rng(42)

    # ---------------------------------------------------------- 1. the code
    p = 5
    code = repro.get_code("code56", p=p)
    print(code.layout.describe())
    print(f"data blocks per stripe: {code.num_data}, "
          f"storage efficiency: {code.storage_efficiency():.2f}\n")

    data = rng.integers(0, 256, size=(code.num_data, 4096), dtype=np.uint8)
    stripe = code.make_stripe(data)
    assert code.verify(stripe)

    broken = stripe.copy()
    broken[:, 1, :] = 0
    broken[:, 3, :] = 0
    code.decode_columns(broken, 1, 3)
    assert np.array_equal(broken, stripe)
    print("double-disk failure (cols 1 & 3): fully recovered ✓")

    # --------------------------------------- 2. the paper's special decoders
    plan = plan_double_column_recovery(code.layout, 1, 2)
    print(f"Algorithm 1 plan for cols (1,2): {len(plan.steps)} chain steps, "
          f"{plan.total_xors} XORs ({p - 3} per lost element — optimal)")

    hybrid = plan_hybrid_recovery(code.layout, 1)
    print(f"hybrid single-disk recovery of col 1: {hybrid.reads} reads vs "
          f"{hybrid.conventional_reads} conventional "
          f"({hybrid.read_savings:.0%} fewer — the paper's Fig. 6)\n")

    # ------------------------------------------------------- 3. the upgrade
    outcome = repro.upgrade_to_raid6(m=4, groups=8, block_size=512)
    print("RAID-5 (4 disks) -> RAID-6 (5 disks) via Code 5-6:")
    print(" ", outcome.summary)
    b = outcome.plan.data_blocks
    print(f"  reads = B = {outcome.result.measured_reads}, "
          f"writes = B/3 = {outcome.result.measured_writes}, "
          f"total = 4B/3 = {outcome.total_ios} (B = {b})")


if __name__ == "__main__":
    main()
