"""Online migration (Algorithm 2): convert while serving application I/O.

Builds a live 6-disk left-asymmetric RAID-5, hot-adds a seventh disk,
then runs the paper's two-thread conversion: the conversion thread
streams the diagonal-parity column while application reads proceed
unimpeded and writes interrupt it (updating the horizontal parity
always, the diagonal parity only once generated).  Afterwards the array
is a verified Code 5-6 RAID-6 — and we demote it back to RAID-5 to show
the bidirectional path.
"""

import numpy as np

from repro.core import Code56Migrator
from repro.migration import OnlineRequest
from repro.raid import BlockArray, Raid5Array, Raid5Layout


def main() -> None:
    rng = np.random.default_rng(7)
    p = 7
    m = p - 1
    groups = 40
    block_size = 512

    array = BlockArray(m, groups * (p - 1), block_size=block_size)
    raid5 = Raid5Array(array, Raid5Layout.LEFT_ASYMMETRIC)
    truth = rng.integers(0, 256, size=(raid5.capacity_blocks, block_size), dtype=np.uint8)
    raid5.format_with(truth)
    print(f"source: RAID-5, {m} disks, {raid5.capacity_blocks} data blocks")

    # a synthetic online workload: 30% writes, Poisson-ish arrivals
    requests = []
    t = 0.0
    for _ in range(200):
        t += float(rng.exponential(8.0))
        lba = int(rng.integers(0, raid5.capacity_blocks))
        if rng.random() < 0.3:
            payload = rng.integers(0, 256, size=block_size, dtype=np.uint8)
            truth[lba] = payload
            requests.append(OnlineRequest(time=t, lba=lba, is_write=True, payload=payload))
        else:
            requests.append(OnlineRequest(time=t, lba=lba, is_write=False))

    migrator = Code56Migrator(array, p)
    migrator.check_source()  # Step 1
    migrator.add_parity_disk()  # Step 2
    report = migrator.convert_online(requests)  # Step 3

    print(f"conversion finished at tick {report.finish_tick:.0f}")
    print(f"  conversion I/O ticks : {report.conversion_ticks}")
    print(f"  application I/O ticks: {report.app_ticks}")
    print(f"  writes interrupting  : {report.interruptions} "
          f"({report.writes_to_converted} patched a generated diagonal parity, "
          f"{report.writes_to_unconverted} landed ahead of the conversion front)")
    lat = np.array(report.request_latencies)
    print(f"  request latency (Te) : mean {lat.mean():.1f}, max {lat.max():.0f}")

    raid6 = migrator.as_raid6()
    assert raid6.verify()
    for lba in range(raid6.capacity_blocks):
        assert np.array_equal(raid6.read(lba), truth[lba])
    print("converted array verified: Code 5-6 RAID-6, all data intact ✓")

    # survive a double failure to prove the upgrade bought something
    array.fail_disk(0)
    array.fail_disk(4)
    sample = rng.integers(0, raid6.capacity_blocks, size=20)
    for lba in sample:
        assert np.array_equal(raid6.read(int(lba)), truth[int(lba)])
    print("double-disk failure: degraded reads all correct ✓")
    raid6.rebuild_disks(0, 4)
    assert raid6.verify()

    # ...and back again (Section IV-A: bidirectional)
    raid5_again = migrator.revert()
    assert raid5_again.verify()
    print("downgraded back to RAID-5 (dropped the diagonal column) ✓")


if __name__ == "__main__":
    main()
