"""Silent corruption: what the RAID-6 upgrade buys beyond disk failures.

The paper motivates migration with rising failure *and* sector-error
rates (UDEs/LSEs).  This example injects silent bit flips into a RAID-5
and into the Code 5-6 RAID-6 it converts to, then scrubs both:

* the RAID-5 only learns *that* a stripe is inconsistent;
* the RAID-6's two chains per block pinpoint the corrupt block and heal
  it in place.
"""

import numpy as np

from repro.codes import get_code
from repro.raid import (
    BlockArray,
    Raid5Array,
    Raid6Array,
    scrub_raid5,
    scrub_raid6,
)


def main() -> None:
    rng = np.random.default_rng(13)
    p, groups, bs = 7, 30, 512

    # ---------------------------------------------------------- RAID-5 side
    arr5 = BlockArray(p - 1, groups * (p - 1), block_size=bs)
    r5 = Raid5Array(arr5)
    r5.format_with(
        rng.integers(0, 256, size=(r5.capacity_blocks, bs), dtype=np.uint8)
    )
    # a latent sector error flips bits nobody reads
    victim_stripe = 17
    arr5.raw(2, victim_stripe)[100] ^= 0x20
    report5 = scrub_raid5(r5)
    print("RAID-5 scrub:")
    print(f"  inconsistent stripes: {report5.inconsistent_stripes}")
    print("  ...but which of the 6 blocks rotted?  RAID-5 cannot say —")
    print("  and if a disk dies before an operator intervenes, that")
    print("  stripe reconstructs garbage.\n")

    # ---------------------------------------------------------- RAID-6 side
    code = get_code("code56", p)
    arr6 = BlockArray(p, groups * (p - 1), block_size=bs)
    r6 = Raid6Array(arr6, code)
    data = rng.integers(0, 256, size=(r6.capacity_blocks, bs), dtype=np.uint8)
    r6.format_with(data)
    # flip bits in three different stripe-groups (data and parity blocks)
    victims = [(3, code.layout.data_cells[5]), (11, code.layout.data_cells[20]),
               (19, next(iter(code.layout.parity_cells)))]
    for g, cell in victims:
        disk = r6.disk_of(g, cell[1])
        arr6.raw(disk, r6.block_of(g, cell[0]))[7] ^= 0x80
    report6 = scrub_raid6(r6)
    print("Code 5-6 RAID-6 scrub:")
    print(f"  inconsistent groups: {report6.inconsistent_groups}")
    for g, cell in report6.located:
        print(f"  located corrupt block: group {g}, cell {cell} -> repaired")
    assert sorted(report6.repaired) == sorted(victims)
    assert r6.verify()
    for lba in range(r6.capacity_blocks):
        assert np.array_equal(r6.read(lba), data[lba])
    print("  array verified clean; every logical block intact ✓\n")

    print("Same aging disks, same workload — but the second parity chain")
    print("turns 'detected, data at risk' into 'located and healed'.")


if __name__ == "__main__":
    main()
