"""Side-by-side comparison of all seven codes (Table III, Figs 9-16).

For every (code, approach) pairing the paper evaluates, build the
block-accurate conversion plan over one alignment cycle, extract the
Section V metrics, and print the comparison matrix.  Also prints the
code-property columns of Table III (update penalty, storage efficiency,
encode XORs) measured from the actual layouts.
"""

from repro.analysis import metrics_from_plan
from repro.analysis.costmodel import comparison_width
from repro.codes import CODE_NAMES, certify_mds, get_code
from repro.migration import build_plan, supported_conversions
from repro.migration.approaches import alignment_cycle


def code_properties(p: int = 5) -> None:
    print(f"code properties at p={p} (Table III's static columns)")
    header = f"{'code':>8} {'disks':>6} {'data':>5} {'eff':>6} {'MDS':>4} {'upd-penalty':>12} {'enc XOR/blk':>12}"
    print(header)
    for name in CODE_NAMES:
        code = get_code(name, p)
        rep = certify_mds(code.layout)
        pens = [code.layout.update_penalty(c) for c in code.layout.data_cells]
        avg_pen = sum(pens) / len(pens)
        enc = code.layout.xor_count_total() / code.num_data
        print(
            f"{name:>8} {code.n_disks:>6} {code.num_data:>5} "
            f"{code.storage_efficiency():>6.2f} {'yes' if rep.is_mds else 'NO':>4} "
            f"{avg_pen:>12.2f} {enc:>12.2f}"
        )
    print()


def conversion_matrix(p: int = 5) -> None:
    print(f"conversion metrics at p={p} (fractions of B; Figs 9-16)")
    header = (
        f"{'conversion':>42} {'invalid':>8} {'migr':>6} {'newpar':>7} "
        f"{'extra':>6} {'XOR':>6} {'write':>6} {'total':>6} {'T-nlb':>6} {'T-lb':>6}"
    )
    print(header)
    rows = []
    for code, approach in supported_conversions():
        try:
            n = comparison_width(code, p)
            plan = build_plan(code, approach, p, groups=alignment_cycle(code, p, n), n_disks=n)
        except ValueError:
            continue
        m = metrics_from_plan(plan)
        rows.append(m)
    rows.sort(key=lambda m: m.total_ios)
    for m in rows:
        print(
            f"{m.label:>42} {m.invalid_parity_ratio:>8.3f} {m.migration_ratio:>6.3f} "
            f"{m.new_parity_ratio:>7.3f} {m.extra_space_ratio:>6.3f} "
            f"{m.computation_cost:>6.3f} {m.write_ios:>6.3f} {m.total_ios:>6.3f} "
            f"{m.time_nlb:>6.3f} {m.time_lb:>6.3f}"
        )
    best = rows[0]
    print(f"\nwinner on total I/O and conversion cost: {best.label}")
    print()


def main() -> None:
    for p in (5, 7):
        code_properties(p)
        conversion_matrix(p)


if __name__ == "__main__":
    main()
