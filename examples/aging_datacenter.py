"""When should an aging RAID-5 fleet migrate to RAID-6?

The paper's motivation (Section I, Table I): disk failure rates climb
steeply after the first year, and RAID-5's single-failure tolerance
stops being enough.  This example quantifies that story with the
embedded Table I statistics and the library's Markov MTTDL models, then
prices the migration itself — including the reliability of the array
*during* each conversion approach's window (Table VI).
"""

import numpy as np

from repro.analysis import (
    AFR_BY_AGE,
    afr_to_lambda,
    conversion_window_risk,
    mttdl_raid5,
    mttdl_raid6,
)
from repro.analysis.timing import conversion_time
from repro.migration import build_plan
from repro.migration.approaches import alignment_cycle
from repro.simdisk import get_preset, simulate_closed
from repro.workloads import conversion_trace

HOURS_PER_YEAR = 8766.0


def main() -> None:
    n = 7  # a 6-disk RAID-5 fleet converting to 7-disk RAID-6 (p = 7)
    repair_hours = 24.0
    mu = 1.0 / repair_hours

    print("MTTDL by drive age (Table I AFRs), 6-disk RAID-5 vs 7-disk RAID-6")
    print(f"{'age':>4} {'AFR':>6} {'RAID-5 MTTDL':>14} {'RAID-6 MTTDL':>14} {'gain':>8}")
    for age, afr in AFR_BY_AGE.items():
        lam = afr_to_lambda(afr)
        r5 = mttdl_raid5(6, lam, mu) / HOURS_PER_YEAR
        r6 = mttdl_raid6(7, lam, mu) / HOURS_PER_YEAR
        print(f"{age:>4} {afr:>6.1%} {r5:>12.0f}yr {r6:>12.0f}yr {r6 / r5:>7.0f}x")

    # price the migration at year 3 (the AFR peak)
    afr = AFR_BY_AGE[3]
    model = get_preset("sata-7200")
    b = 600_000  # 0.6M blocks, the paper's Figure 19 scale
    print(f"\nmigration window at year 3 (AFR {afr:.1%}), B = {b} blocks of 4KB:")
    print(f"{'approach':>32} {'window':>9} {'tolerance':>10} {'P(loss in window)':>18}")
    for code, approach in [
        ("code56", "direct"),
        ("rdp", "via-raid4"),
        ("rdp", "via-raid0"),
    ]:
        p = 7
        plan = build_plan(code, approach, p, groups=alignment_cycle(code, p))
        trace = conversion_trace(plan, total_data_blocks=b, block_size=4096)
        sim = simulate_closed(trace, model)
        hours = sim.makespan_ms / 3.6e6
        risk = conversion_window_risk(approach, code, plan.n, hours, afr, repair_hours)
        label = f"{approach}({code})"
        print(f"{label:>32} {hours:>8.2f}h {risk.tolerance_during_window:>10} "
              f"{risk.loss_probability:>18.2e}  [{risk.reliability_class}]")

    # analytic view: time in units of B*Te for the same three options
    print("\nanalytic conversion time (fraction of B*Te, no load balancing):")
    for code, approach in [("code56", "direct"), ("rdp", "via-raid4"), ("rdp", "via-raid0")]:
        plan = build_plan(code, approach, 7, groups=alignment_cycle(code, 7))
        print(f"  {approach:>10}({code}): {conversion_time(plan):.3f}")

    print("\nconclusion: convert direct with Code 5-6 — the shortest window,"
          "\nfull single-failure tolerance throughout, and no parity at risk.")


if __name__ == "__main__":
    main()
